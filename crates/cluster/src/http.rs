//! A minimal, dependency-free HTTP/1.1 debug/metrics endpoint.
//!
//! Serves a handful of read-only routes — `GET /metrics` (Prometheus
//! text exposition), `GET /trace?req=<id>` (one request's span
//! timeline as JSON), `GET /debug/recent` (the flight recorder's ring
//! and pin list as JSON) — so any scraper or `curl` can inspect a live
//! server without speaking the binary wire protocol. This is
//! deliberately not a web framework: a [`Router`] maps exact paths to
//! handlers (each choosing its own status and content type, with the
//! raw query string passed through), requests are parsed just enough
//! to route (`GET`/`HEAD`, 405 on other methods, 404 elsewhere, 400
//! for garbage), every response carries `Content-Length` and
//! `Connection: close`, and the connection is then dropped.
//!
//! The exporter is hardened against trickle-feed ("slowloris") abuse:
//! each connection gets [`ServeOptions::per_conn_timeout`] to complete
//! its whole request/response exchange, and at most
//! [`ServeOptions::max_connections`] are served concurrently — excess
//! connections are shed immediately rather than queued.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Most bytes of request head we are willing to buffer before calling
/// the request malformed.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Content type of the Prometheus text exposition format.
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Content type of the JSON debug routes.
pub const CONTENT_TYPE_JSON: &str = "application/json; charset=utf-8";

/// Abuse limits for the exporter.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Budget for one connection's whole exchange — a scraper that
    /// trickles header bytes (or never finishes reading the body) is
    /// cut off at this deadline instead of pinning a handler forever.
    pub per_conn_timeout: Duration,
    /// Concurrently served connections; further ones are dropped on
    /// accept until a slot frees up.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { per_conn_timeout: Duration::from_secs(10), max_connections: 64 }
    }
}

/// One route's rendered reply: status, content type, and body.
#[derive(Debug, Clone)]
pub struct RouteReply {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl RouteReply {
    /// A `200 OK` JSON reply.
    pub fn json(body: String) -> Self {
        RouteReply { status: 200, content_type: CONTENT_TYPE_JSON, body }
    }

    /// A `400 Bad Request` with a plain-text explanation.
    pub fn bad_request(msg: &str) -> Self {
        RouteReply { status: 400, content_type: CONTENT_TYPE_PROMETHEUS, body: format!("{msg}\n") }
    }
}

/// A boxed route handler future — the return type handler closures
/// must annotate so `Box::pin(async { ... })` coerces to it.
pub type BoxedReply = Pin<Box<dyn Future<Output = RouteReply> + Send>>;

/// A route handler: receives the request's raw query string (the part
/// after `?`, undecoded, `None` when absent) and produces a reply.
pub type Handler = Arc<dyn Fn(Option<String>) -> BoxedReply + Send + Sync>;

/// An exact-path router for the debug endpoint.
#[derive(Default)]
pub struct Router {
    routes: Vec<(&'static str, Handler)>,
}

impl Router {
    /// An empty router (every request 404s).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a handler for an exact path (queries are passed through,
    /// not matched on). Later routes never shadow earlier ones.
    #[must_use]
    pub fn route(mut self, path: &'static str, handler: Handler) -> Self {
        if !self.routes.iter().any(|(p, _)| *p == path) {
            self.routes.push((path, handler));
        }
        self
    }

    /// Adds a synchronous text route with the Prometheus content type —
    /// the shape of the classic `/metrics` exposition.
    #[must_use]
    pub fn route_text(
        self,
        path: &'static str,
        render: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> Self {
        self.route(
            path,
            Arc::new(move |_query: Option<String>| -> BoxedReply {
                let body = render();
                Box::pin(async move {
                    RouteReply { status: 200, content_type: CONTENT_TYPE_PROMETHEUS, body }
                })
            }),
        )
    }

    fn find(&self, path: &str) -> Option<&Handler> {
        self.routes.iter().find(|(p, _)| *p == path).map(|(_, h)| h)
    }
}

/// Accept loop: serves `GET /metrics` (and `HEAD`) on `listener`,
/// rendering a fresh exposition via `render` per request, with default
/// [`ServeOptions`]. Runs until the task is dropped; typically spawned
/// next to [`Server::run`]. For the multi-route debug endpoint use
/// [`serve_router`] with [`Server::router`].
///
/// [`Server::run`]: crate::server::Server::run
/// [`Server::router`]: crate::server::Server::router
pub async fn serve(listener: TcpListener, render: Arc<dyn Fn() -> String + Send + Sync>) {
    serve_with(listener, render, ServeOptions::default()).await;
}

/// [`serve`] with explicit abuse limits.
pub async fn serve_with(
    listener: TcpListener,
    render: Arc<dyn Fn() -> String + Send + Sync>,
    opts: ServeOptions,
) {
    let router = Arc::new(Router::new().route_text("/metrics", render));
    serve_router_with(listener, router, opts).await;
}

/// Accept loop over a [`Router`], with default [`ServeOptions`].
pub async fn serve_router(listener: TcpListener, router: Arc<Router>) {
    serve_router_with(listener, router, ServeOptions::default()).await;
}

/// [`serve_router`] with explicit abuse limits.
pub async fn serve_router_with(listener: TcpListener, router: Arc<Router>, opts: ServeOptions) {
    let slots = Arc::new(tokio::sync::Semaphore::new(opts.max_connections.max(1)));
    loop {
        let (socket, peer) = match listener.accept().await {
            Ok(pair) => pair,
            Err(err) => {
                pls_telemetry::warn!("metrics_accept_error", err = err);
                continue;
            }
        };
        let Ok(permit) = Arc::clone(&slots).try_acquire_owned() else {
            // At capacity: shed the connection outright. A scraper will
            // retry; a flood will not be queued.
            pls_telemetry::warn!("metrics_connection_shed", peer = peer);
            continue;
        };
        let router = Arc::clone(&router);
        let per_conn = opts.per_conn_timeout;
        tokio::spawn(async move {
            // Serve-and-close; errors (and deadline kills) are the
            // client's problem.
            let _ = tokio::time::timeout(per_conn, serve_one(socket, &router)).await;
            drop(permit);
        });
    }
}

/// Reads one request head and writes the matching response.
async fn serve_one(mut socket: TcpStream, router: &Router) -> std::io::Result<()> {
    let head = match read_request_head(&mut socket).await? {
        Some(head) => head,
        None => return respond(&mut socket, 400, "bad request\n", false).await,
    };
    let Some((method, path, query)) = parse_request_line(&head) else {
        return respond(&mut socket, 400, "bad request\n", false).await;
    };
    match router.find(path) {
        Some(handler) if method == "GET" || method == "HEAD" => {
            let reply = handler(query.map(str::to_string)).await;
            respond_reply(&mut socket, &reply, method == "HEAD").await
        }
        Some(_) => respond(&mut socket, 405, "method not allowed\n", false).await,
        None => respond(&mut socket, 404, "not found\n", false).await,
    }
}

/// Buffers up to the end of the request head (`\r\n\r\n`). Returns
/// `None` when the head never terminates within [`MAX_REQUEST_HEAD`]
/// bytes (or the peer hangs up first).
async fn read_request_head(socket: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    loop {
        let n = socket.read(&mut buf).await?;
        if n == 0 {
            return Ok(None);
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return Ok(Some(head));
        }
        if head.len() > MAX_REQUEST_HEAD {
            return Ok(None);
        }
    }
}

/// Splits the request line into method, path, and raw query string
/// (`None` when the target has no `?`); `None` overall if the line is
/// not plausibly HTTP/1.x.
fn parse_request_line(head: &[u8]) -> Option<(&str, &str, Option<&str>)> {
    let line_end = head.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&head[..line_end]).ok()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return None;
    }
    // Route on the path; hand the query through to the handler.
    match target.split_once('?') {
        Some((path, query)) => Some((method, path, Some(query))),
        None => Some((method, target, None)),
    }
}

/// Extracts one `key=value` pair from a raw query string (no percent
/// decoding — the debug routes only take numeric parameters).
pub fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    }
}

async fn respond(
    socket: &mut TcpStream,
    status: u16,
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let reply =
        RouteReply { status, content_type: CONTENT_TYPE_PROMETHEUS, body: body.to_string() };
    respond_reply(socket, &reply, head_only).await
}

async fn respond_reply(
    socket: &mut TcpStream,
    reply: &RouteReply,
    head_only: bool,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        reply.status,
        reason_for(reply.status),
        reply.content_type,
        reply.body.len()
    );
    socket.write_all(header.as_bytes()).await?;
    if !head_only {
        socket.write_all(reply.body.as_bytes()).await?;
    }
    socket.flush().await?;
    socket.shutdown().await
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics", None))
        );
        // Query strings are preserved and handed to the route handler.
        assert_eq!(
            parse_request_line(b"HEAD /metrics?ts=1 HTTP/1.0\r\n\r\n"),
            Some(("HEAD", "/metrics", Some("ts=1")))
        );
        assert_eq!(
            parse_request_line(b"GET /trace?req=42&x=y HTTP/1.1\r\n\r\n"),
            Some(("GET", "/trace", Some("req=42&x=y")))
        );
        assert_eq!(parse_request_line(b"GET /metrics\r\n\r\n"), None); // no version
        assert_eq!(parse_request_line(b"GET /metrics SPDY/3\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"\xff\xfe oops HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"no crlf"), None);
    }

    #[test]
    fn query_params_are_extracted_verbatim() {
        assert_eq!(query_param("req=42", "req"), Some("42"));
        assert_eq!(query_param("a=1&req=0xff&b=2", "req"), Some("0xff"));
        assert_eq!(query_param("a=1&b=2", "req"), None);
        assert_eq!(query_param("req", "req"), None); // no '='
        assert_eq!(query_param("", "req"), None);
    }

    async fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut sock = TcpStream::connect(addr).await.unwrap();
        sock.write_all(raw.as_bytes()).await.unwrap();
        let mut out = String::new();
        sock.read_to_string(&mut out).await.unwrap();
        out
    }

    #[tokio::test]
    async fn exporter_routes_and_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "# TYPE pls_live_coverage gauge\npls_live_coverage 1\n".to_string());
        let exporter = tokio::spawn(serve(listener, render));

        let ok = request(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").await;
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Type: text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("Connection: close"), "{ok}");
        assert!(ok.ends_with("pls_live_coverage 1\n"), "{ok}");
        let body_len = ok.split("\r\n\r\n").nth(1).unwrap().len();
        assert!(ok.contains(&format!("Content-Length: {body_len}\r\n")), "{ok}");

        let head = request(addr, "HEAD /metrics HTTP/1.1\r\n\r\n").await;
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(!head.contains("pls_live_coverage"), "{head}");

        let missing = request(addr, "GET /other HTTP/1.1\r\n\r\n").await;
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let wrong_method = request(addr, "POST /metrics HTTP/1.1\r\n\r\n").await;
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");

        let garbage = request(addr, "not http at all\r\n\r\n").await;
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");

        exporter.abort();
    }

    #[tokio::test]
    async fn router_serves_json_routes_with_query_passthrough() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let router = Router::new().route_text("/metrics", Arc::new(|| "m 1\n".to_string())).route(
            "/trace",
            Arc::new(|query: Option<String>| -> BoxedReply {
                Box::pin(async move {
                    match query.as_deref().and_then(|q| query_param(q, "req")) {
                        Some(req) => RouteReply::json(format!("{{\"req\":{req}}}")),
                        None => RouteReply::bad_request("missing req=<id>"),
                    }
                })
            }),
        );
        let exporter = tokio::spawn(serve_router(listener, Arc::new(router)));

        let traced = request(addr, "GET /trace?req=42 HTTP/1.1\r\nHost: t\r\n\r\n").await;
        assert!(traced.starts_with("HTTP/1.1 200 OK\r\n"), "{traced}");
        assert!(traced.contains("Content-Type: application/json"), "{traced}");
        assert!(traced.ends_with("{\"req\":42}"), "{traced}");

        let missing = request(addr, "GET /trace HTTP/1.1\r\n\r\n").await;
        assert!(missing.starts_with("HTTP/1.1 400"), "{missing}");

        // The classic metrics route keeps its exposition content type.
        let metrics = request(addr, "GET /metrics?ignored=1 HTTP/1.1\r\n\r\n").await;
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("Content-Type: text/plain; version=0.0.4"), "{metrics}");

        let unknown = request(addr, "GET /nope HTTP/1.1\r\n\r\n").await;
        assert!(unknown.starts_with("HTTP/1.1 404"), "{unknown}");

        exporter.abort();
    }

    #[tokio::test]
    async fn slowloris_connection_is_cut_off_at_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let render: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(|| "x\n".to_string());
        let opts = ServeOptions {
            per_conn_timeout: Duration::from_millis(100),
            ..ServeOptions::default()
        };
        let exporter = tokio::spawn(serve_with(listener, render, opts));

        // Trickle one header byte, then stall: the server must hang up
        // at its deadline, not wait for the head to complete.
        let mut sock = TcpStream::connect(addr).await.unwrap();
        sock.write_all(b"G").await.unwrap();
        let mut out = Vec::new();
        let read = tokio::time::timeout(Duration::from_secs(5), sock.read_to_end(&mut out)).await;
        // EOF (possibly a reset) well before our own 5s guard: the
        // stalled connection was killed without an HTTP response.
        assert!(read.is_ok(), "exporter never closed the stalled connection");
        assert!(out.is_empty(), "unexpected response to a half-sent request");

        // The exporter still works afterwards.
        let ok = request(addr, "GET /metrics HTTP/1.1\r\n\r\n").await;
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");

        exporter.abort();
    }

    #[tokio::test]
    async fn excess_connections_are_shed_not_queued() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let render: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(|| "x\n".to_string());
        let opts = ServeOptions { per_conn_timeout: Duration::from_secs(1), max_connections: 1 };
        let exporter = tokio::spawn(serve_with(listener, render, opts));

        // Occupy the single slot with a connection that sends nothing.
        let mut holder = TcpStream::connect(addr).await.unwrap();
        holder.write_all(b"G").await.unwrap();
        tokio::time::sleep(Duration::from_millis(50)).await;

        // The next connection is dropped without a response.
        let mut shed = TcpStream::connect(addr).await.unwrap();
        let _ = shed.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").await;
        let mut out = Vec::new();
        let read = tokio::time::timeout(Duration::from_secs(5), shed.read_to_end(&mut out)).await;
        assert!(read.is_ok(), "shed connection was left hanging");
        assert!(out.is_empty(), "shed connection unexpectedly got a response: {out:?}");

        // Once the holder's deadline frees the slot, service resumes.
        drop(holder);
        tokio::time::sleep(Duration::from_millis(100)).await;
        let ok = request(addr, "GET /metrics HTTP/1.1\r\n\r\n").await;
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");

        exporter.abort();
    }
}
