//! A minimal, dependency-free HTTP/1.1 metrics exporter.
//!
//! One job: answer `GET /metrics` with the Prometheus text exposition
//! so any off-the-shelf scraper (or `curl`) can watch a live server's
//! quality gauges without speaking the binary wire protocol. This is
//! deliberately not a web framework — requests are parsed just enough
//! to route (`GET`/`HEAD` on `/metrics`, 404 elsewhere, 400 for
//! garbage), every response carries `Content-Length` and
//! `Connection: close`, and the connection is then dropped.
//!
//! The exporter is hardened against trickle-feed ("slowloris") abuse:
//! each connection gets [`ServeOptions::per_conn_timeout`] to complete
//! its whole request/response exchange, and at most
//! [`ServeOptions::max_connections`] are served concurrently — excess
//! connections are shed immediately rather than queued.

use std::sync::Arc;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Most bytes of request head we are willing to buffer before calling
/// the request malformed.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Content type of the Prometheus text exposition format.
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Abuse limits for the exporter.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Budget for one connection's whole exchange — a scraper that
    /// trickles header bytes (or never finishes reading the body) is
    /// cut off at this deadline instead of pinning a handler forever.
    pub per_conn_timeout: Duration,
    /// Concurrently served connections; further ones are dropped on
    /// accept until a slot frees up.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { per_conn_timeout: Duration::from_secs(10), max_connections: 64 }
    }
}

/// Accept loop: serves `GET /metrics` (and `HEAD`) on `listener`,
/// rendering a fresh exposition via `render` per request, with default
/// [`ServeOptions`]. Runs until the task is dropped; typically spawned
/// next to [`Server::run`].
///
/// [`Server::run`]: crate::server::Server::run
pub async fn serve(listener: TcpListener, render: Arc<dyn Fn() -> String + Send + Sync>) {
    serve_with(listener, render, ServeOptions::default()).await;
}

/// [`serve`] with explicit abuse limits.
pub async fn serve_with(
    listener: TcpListener,
    render: Arc<dyn Fn() -> String + Send + Sync>,
    opts: ServeOptions,
) {
    let slots = Arc::new(tokio::sync::Semaphore::new(opts.max_connections.max(1)));
    loop {
        let (socket, peer) = match listener.accept().await {
            Ok(pair) => pair,
            Err(err) => {
                pls_telemetry::warn!("metrics_accept_error", err = err);
                continue;
            }
        };
        let Ok(permit) = Arc::clone(&slots).try_acquire_owned() else {
            // At capacity: shed the connection outright. A scraper will
            // retry; a flood will not be queued.
            pls_telemetry::warn!("metrics_connection_shed", peer = peer);
            continue;
        };
        let render = Arc::clone(&render);
        let per_conn = opts.per_conn_timeout;
        tokio::spawn(async move {
            // Serve-and-close; errors (and deadline kills) are the
            // client's problem.
            let _ = tokio::time::timeout(per_conn, serve_one(socket, &*render)).await;
            drop(permit);
        });
    }
}

/// Reads one request head and writes the matching response.
async fn serve_one(
    mut socket: TcpStream,
    render: &(dyn Fn() -> String + Send + Sync),
) -> std::io::Result<()> {
    let head = match read_request_head(&mut socket).await? {
        Some(head) => head,
        None => return respond(&mut socket, 400, "Bad Request", "bad request\n", false).await,
    };
    match parse_request_line(&head) {
        Some((method, "/metrics")) if method == "GET" || method == "HEAD" => {
            let body = render();
            respond(&mut socket, 200, "OK", &body, method == "HEAD").await
        }
        Some((_, "/metrics")) => {
            respond(&mut socket, 405, "Method Not Allowed", "method not allowed\n", false).await
        }
        Some(_) => respond(&mut socket, 404, "Not Found", "not found\n", false).await,
        None => respond(&mut socket, 400, "Bad Request", "bad request\n", false).await,
    }
}

/// Buffers up to the end of the request head (`\r\n\r\n`). Returns
/// `None` when the head never terminates within [`MAX_REQUEST_HEAD`]
/// bytes (or the peer hangs up first).
async fn read_request_head(socket: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    loop {
        let n = socket.read(&mut buf).await?;
        if n == 0 {
            return Ok(None);
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return Ok(Some(head));
        }
        if head.len() > MAX_REQUEST_HEAD {
            return Ok(None);
        }
    }
}

/// Splits the request line into method and path; `None` if it is not
/// plausibly HTTP/1.x.
fn parse_request_line(head: &[u8]) -> Option<(&str, &str)> {
    let line_end = head.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&head[..line_end]).ok()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return None;
    }
    // Scrape query strings are ignored, like real exporters do.
    let path = path.split('?').next().unwrap_or(path);
    Some((method, path))
}

async fn respond(
    socket: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {CONTENT_TYPE}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    socket.write_all(header.as_bytes()).await?;
    if !head_only {
        socket.write_all(body.as_bytes()).await?;
    }
    socket.flush().await?;
    socket.shutdown().await
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line(b"HEAD /metrics?ts=1 HTTP/1.0\r\n\r\n"),
            Some(("HEAD", "/metrics"))
        );
        assert_eq!(parse_request_line(b"GET /metrics\r\n\r\n"), None); // no version
        assert_eq!(parse_request_line(b"GET /metrics SPDY/3\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"\xff\xfe oops HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"no crlf"), None);
    }

    async fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut sock = TcpStream::connect(addr).await.unwrap();
        sock.write_all(raw.as_bytes()).await.unwrap();
        let mut out = String::new();
        sock.read_to_string(&mut out).await.unwrap();
        out
    }

    #[tokio::test]
    async fn exporter_routes_and_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "# TYPE pls_live_coverage gauge\npls_live_coverage 1\n".to_string());
        let exporter = tokio::spawn(serve(listener, render));

        let ok = request(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").await;
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Type: text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("Connection: close"), "{ok}");
        assert!(ok.ends_with("pls_live_coverage 1\n"), "{ok}");
        let body_len = ok.split("\r\n\r\n").nth(1).unwrap().len();
        assert!(ok.contains(&format!("Content-Length: {body_len}\r\n")), "{ok}");

        let head = request(addr, "HEAD /metrics HTTP/1.1\r\n\r\n").await;
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(!head.contains("pls_live_coverage"), "{head}");

        let missing = request(addr, "GET /other HTTP/1.1\r\n\r\n").await;
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let wrong_method = request(addr, "POST /metrics HTTP/1.1\r\n\r\n").await;
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");

        let garbage = request(addr, "not http at all\r\n\r\n").await;
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");

        exporter.abort();
    }

    #[tokio::test]
    async fn slowloris_connection_is_cut_off_at_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let render: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(|| "x\n".to_string());
        let opts = ServeOptions {
            per_conn_timeout: Duration::from_millis(100),
            ..ServeOptions::default()
        };
        let exporter = tokio::spawn(serve_with(listener, render, opts));

        // Trickle one header byte, then stall: the server must hang up
        // at its deadline, not wait for the head to complete.
        let mut sock = TcpStream::connect(addr).await.unwrap();
        sock.write_all(b"G").await.unwrap();
        let mut out = Vec::new();
        let read = tokio::time::timeout(Duration::from_secs(5), sock.read_to_end(&mut out)).await;
        // EOF (possibly a reset) well before our own 5s guard: the
        // stalled connection was killed without an HTTP response.
        assert!(read.is_ok(), "exporter never closed the stalled connection");
        assert!(out.is_empty(), "unexpected response to a half-sent request");

        // The exporter still works afterwards.
        let ok = request(addr, "GET /metrics HTTP/1.1\r\n\r\n").await;
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");

        exporter.abort();
    }

    #[tokio::test]
    async fn excess_connections_are_shed_not_queued() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let render: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(|| "x\n".to_string());
        let opts = ServeOptions { per_conn_timeout: Duration::from_secs(1), max_connections: 1 };
        let exporter = tokio::spawn(serve_with(listener, render, opts));

        // Occupy the single slot with a connection that sends nothing.
        let mut holder = TcpStream::connect(addr).await.unwrap();
        holder.write_all(b"G").await.unwrap();
        tokio::time::sleep(Duration::from_millis(50)).await;

        // The next connection is dropped without a response.
        let mut shed = TcpStream::connect(addr).await.unwrap();
        let _ = shed.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").await;
        let mut out = Vec::new();
        let read = tokio::time::timeout(Duration::from_secs(5), shed.read_to_end(&mut out)).await;
        assert!(read.is_ok(), "shed connection was left hanging");
        assert!(out.is_empty(), "shed connection unexpectedly got a response: {out:?}");

        // Once the holder's deadline frees the slot, service resumes.
        drop(holder);
        tokio::time::sleep(Duration::from_millis(100)).await;
        let ok = request(addr, "GET /metrics HTTP/1.1\r\n\r\n").await;
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");

        exporter.abort();
    }
}
