//! A minimal, dependency-free HTTP/1.1 metrics exporter.
//!
//! One job: answer `GET /metrics` with the Prometheus text exposition
//! so any off-the-shelf scraper (or `curl`) can watch a live server's
//! quality gauges without speaking the binary wire protocol. This is
//! deliberately not a web framework — requests are parsed just enough
//! to route (`GET`/`HEAD` on `/metrics`, 404 elsewhere, 400 for
//! garbage), every response carries `Content-Length` and
//! `Connection: close`, and the connection is then dropped.

use std::sync::Arc;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Most bytes of request head we are willing to buffer before calling
/// the request malformed.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Content type of the Prometheus text exposition format.
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Accept loop: serves `GET /metrics` (and `HEAD`) on `listener`,
/// rendering a fresh exposition via `render` per request. Runs until
/// the task is dropped; typically spawned next to [`Server::run`].
///
/// [`Server::run`]: crate::server::Server::run
pub async fn serve(listener: TcpListener, render: Arc<dyn Fn() -> String + Send + Sync>) {
    loop {
        let (socket, _) = match listener.accept().await {
            Ok(pair) => pair,
            Err(err) => {
                pls_telemetry::warn!("metrics_accept_error", err = err);
                continue;
            }
        };
        let render = Arc::clone(&render);
        tokio::spawn(async move {
            // Serve-and-close; errors are the client's problem.
            let _ = serve_one(socket, &*render).await;
        });
    }
}

/// Reads one request head and writes the matching response.
async fn serve_one(
    mut socket: TcpStream,
    render: &(dyn Fn() -> String + Send + Sync),
) -> std::io::Result<()> {
    let head = match read_request_head(&mut socket).await? {
        Some(head) => head,
        None => return respond(&mut socket, 400, "Bad Request", "bad request\n", false).await,
    };
    match parse_request_line(&head) {
        Some((method, "/metrics")) if method == "GET" || method == "HEAD" => {
            let body = render();
            respond(&mut socket, 200, "OK", &body, method == "HEAD").await
        }
        Some((_, "/metrics")) => {
            respond(&mut socket, 405, "Method Not Allowed", "method not allowed\n", false).await
        }
        Some(_) => respond(&mut socket, 404, "Not Found", "not found\n", false).await,
        None => respond(&mut socket, 400, "Bad Request", "bad request\n", false).await,
    }
}

/// Buffers up to the end of the request head (`\r\n\r\n`). Returns
/// `None` when the head never terminates within [`MAX_REQUEST_HEAD`]
/// bytes (or the peer hangs up first).
async fn read_request_head(socket: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    loop {
        let n = socket.read(&mut buf).await?;
        if n == 0 {
            return Ok(None);
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return Ok(Some(head));
        }
        if head.len() > MAX_REQUEST_HEAD {
            return Ok(None);
        }
    }
}

/// Splits the request line into method and path; `None` if it is not
/// plausibly HTTP/1.x.
fn parse_request_line(head: &[u8]) -> Option<(&str, &str)> {
    let line_end = head.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&head[..line_end]).ok()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return None;
    }
    // Scrape query strings are ignored, like real exporters do.
    let path = path.split('?').next().unwrap_or(path);
    Some((method, path))
}

async fn respond(
    socket: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {CONTENT_TYPE}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    socket.write_all(header.as_bytes()).await?;
    if !head_only {
        socket.write_all(body.as_bytes()).await?;
    }
    socket.flush().await?;
    socket.shutdown().await
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line(b"HEAD /metrics?ts=1 HTTP/1.0\r\n\r\n"),
            Some(("HEAD", "/metrics"))
        );
        assert_eq!(parse_request_line(b"GET /metrics\r\n\r\n"), None); // no version
        assert_eq!(parse_request_line(b"GET /metrics SPDY/3\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"\xff\xfe oops HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"no crlf"), None);
    }

    async fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut sock = TcpStream::connect(addr).await.unwrap();
        sock.write_all(raw.as_bytes()).await.unwrap();
        let mut out = String::new();
        sock.read_to_string(&mut out).await.unwrap();
        out
    }

    #[tokio::test]
    async fn exporter_routes_and_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "# TYPE pls_live_coverage gauge\npls_live_coverage 1\n".to_string());
        let exporter = tokio::spawn(serve(listener, render));

        let ok = request(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").await;
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Type: text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("Connection: close"), "{ok}");
        assert!(ok.ends_with("pls_live_coverage 1\n"), "{ok}");
        let body_len = ok.split("\r\n\r\n").nth(1).unwrap().len();
        assert!(ok.contains(&format!("Content-Length: {body_len}\r\n")), "{ok}");

        let head = request(addr, "HEAD /metrics HTTP/1.1\r\n\r\n").await;
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(!head.contains("pls_live_coverage"), "{head}");

        let missing = request(addr, "GET /other HTTP/1.1\r\n\r\n").await;
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let wrong_method = request(addr, "POST /metrics HTTP/1.1\r\n\r\n").await;
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");

        let garbage = request(addr, "not http at all\r\n\r\n").await;
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");

        exporter.abort();
    }
}
