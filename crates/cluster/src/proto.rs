//! The application protocol: requests, responses, and the encoding of
//! `pls-core`'s strategy [`Message`]s.
//!
//! Every request/response is one frame (see [`crate::wire`]). The first
//! payload byte is the opcode.

use bytes::Bytes;
use pls_core::{Message, StrategySpec, Tombstone};
use pls_net::ServerId;
use pls_telemetry::{HistogramSnapshot, MetricsSnapshot, SpanRecord, BUCKETS};

use crate::error::ClusterError;
use crate::metrics::ReqOp;
use crate::wire::{Reader, Writer};

/// A live-cluster entry: an opaque byte string (peer address, URL, …).
pub type Entry = Vec<u8>;

/// A request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Client: batch-specify the entries of a key.
    Place {
        /// The key.
        key: Vec<u8>,
        /// Its full entry set.
        entries: Vec<Entry>,
        /// Strategy override for this key (§2: "different strategies can
        /// be used to manage different types of keys"); `None` uses the
        /// cluster's default. Must be consistent across re-places of the
        /// same key.
        spec: Option<StrategySpec>,
    },
    /// Client: add one entry to a key.
    Add {
        /// The key.
        key: Vec<u8>,
        /// The new entry.
        entry: Entry,
    },
    /// Client: delete one entry from a key.
    Delete {
        /// The key.
        key: Vec<u8>,
        /// The entry to remove.
        entry: Entry,
    },
    /// Client: lookup probe — "return up to `t` random entries you store
    /// for this key" (§3's per-server lookup behaviour).
    Probe {
        /// The key.
        key: Vec<u8>,
        /// The target answer size.
        t: u32,
    },
    /// Server→server: a strategy-protocol message for a key, forwarded on
    /// behalf of server `from`.
    Internal {
        /// Originating server (engines need it for migrate replies).
        from: u32,
        /// The key whose engine should process the message.
        key: Vec<u8>,
        /// The key's strategy when it differs from the cluster default,
        /// so the receiver creates the engine under the right strategy
        /// even if it never saw the client's `Place`.
        spec: Option<StrategySpec>,
        /// The engine message.
        msg: Message<Entry>,
    },
    /// Diagnostics: key and entry counts.
    Status,
    /// Recovery: list every key this server manages.
    Keys,
    /// Recovery: a full snapshot of one key's local state (entries,
    /// round-robin positions, coordinator counters).
    Snapshot {
        /// The key.
        key: Vec<u8>,
    },
    /// Which strategy manages this key (lets a client that did not place
    /// the key pick the right lookup procedure).
    SpecOf {
        /// The key.
        key: Vec<u8>,
    },
    /// Observability: this server's runtime metrics snapshot.
    Metrics {
        /// Atomically drain every counter and histogram as it is read
        /// (delta scraping); `false` leaves them accumulating.
        reset: bool,
    },
    /// Observability: every span this server's flight recorder retains
    /// for one request id (see [`pls_telemetry::recorder`]).
    Trace {
        /// The request id to reconstruct.
        req: u64,
    },
    /// Anti-entropy: a cheap placement digest of one key — entry count,
    /// an order-independent entry-set hash, and the round-robin
    /// position/counter fingerprint. Peers compare digests on a jittered
    /// interval and repair divergence through the `Snapshot` pull path.
    Digest {
        /// The key.
        key: Vec<u8>,
    },
    /// Membership gossip: "here is my view of the cluster — install it
    /// if it is newer than yours, and reply with yours." Carrying the
    /// empty epoch-0 view makes this a plain fetch. Sent by servers on
    /// their anti-entropy cadence, by joiners at boot, and by clients
    /// refreshing their routing table.
    Membership {
        /// The sender's epoch (0 = "I know nothing, just tell me").
        epoch: u64,
        /// The sender's `(server id, dial address)` list.
        members: Vec<(u64, String)>,
    },
    /// Operator-initiated membership change: join an address and/or
    /// gracefully remove a server. The receiving server bumps the
    /// epoch, installs the new view, fans it out to every member, and
    /// replies with the result.
    JoinLeave {
        /// Address of a server joining the cluster, if any.
        join: Option<String>,
        /// Id of a server leaving gracefully (a drain), if any.
        leave: Option<u64>,
    },
}

/// A response frame.
// No `Eq`: metrics snapshots carry `f64` gauge readings.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request was applied.
    Ok,
    /// Probe answer.
    Entries(Vec<Entry>),
    /// Status answer: `(keys, total entries stored)`.
    Status {
        /// Number of keys this server manages.
        keys: u64,
        /// Total entries stored across keys.
        entries: u64,
    },
    /// The request failed server-side.
    Error(String),
    /// Recovery: the keys this server manages.
    Keys(Vec<Vec<u8>>),
    /// Recovery: one key's local state.
    Snapshot {
        /// The locally stored entries.
        entries: Vec<Entry>,
        /// Round-robin `(position, entry)` pairs (empty for other
        /// strategies).
        positions: Vec<(u64, Entry)>,
        /// Round-robin coordinator counters, if this server holds them.
        counters: Option<(u64, u64)>,
        /// The key's version (per-key Lamport clock) at the donor.
        version: u64,
        /// Live delete tombstones at the donor.
        tombstones: Vec<(Entry, Tombstone)>,
        /// The strategy this key is managed under at the donor (`None`
        /// for unknown keys).
        spec: Option<StrategySpec>,
    },
    /// The strategy managing a key (`None` when the key is unknown to
    /// this server).
    SpecOf(Option<StrategySpec>),
    /// Observability: the server's metrics snapshot (see
    /// [`crate::metrics::ServerMetrics`]).
    Metrics(MetricsSnapshot),
    /// Observability: the flight-recorder spans answering a `Trace`
    /// request, oldest first.
    Spans(Vec<SpanRecord>),
    /// Anti-entropy: one key's placement digest (see
    /// [`Request::Digest`]).
    Digest {
        /// Whether this server has an engine for the key at all.
        known: bool,
        /// The strategy managing the key here (`None` when unknown).
        spec: Option<StrategySpec>,
        /// Locally stored entry count.
        count: u64,
        /// Order-independent hash of the stored entry set.
        entry_hash: u64,
        /// Order-independent hash of the round-robin `(position, entry)`
        /// pairs (0 for other strategies).
        positions_hash: u64,
        /// The key's version (per-key Lamport clock) at this server —
        /// lets peers rank donors by freshness and feeds the staleness
        /// probes.
        version: u64,
        /// Round-robin coordinator counters, if held here.
        counters: Option<(u64, u64)>,
    },
    /// The responder's membership view (see [`Request::Membership`] and
    /// [`Request::JoinLeave`]).
    Membership {
        /// The responder's epoch after processing the request.
        epoch: u64,
        /// The responder's `(server id, dial address)` list.
        members: Vec<(u64, String)>,
    },
}

// ---- opcodes ----
const REQ_PLACE: u8 = 0x01;
const REQ_ADD: u8 = 0x02;
const REQ_DELETE: u8 = 0x03;
const REQ_PROBE: u8 = 0x04;
const REQ_INTERNAL: u8 = 0x05;
const REQ_STATUS: u8 = 0x06;
const REQ_KEYS: u8 = 0x07;
const REQ_SNAPSHOT: u8 = 0x08;
const REQ_SPEC_OF: u8 = 0x09;
const REQ_METRICS: u8 = 0x0A;
const REQ_TRACE: u8 = 0x0B;
const REQ_DIGEST: u8 = 0x0C;
const REQ_MEMBERSHIP: u8 = 0x0D;
const REQ_JOIN_LEAVE: u8 = 0x0E;

const RESP_OK: u8 = 0x80;
const RESP_ENTRIES: u8 = 0x81;
const RESP_STATUS: u8 = 0x82;
const RESP_KEYS: u8 = 0x83;
const RESP_SNAPSHOT: u8 = 0x84;
const RESP_SPEC_OF: u8 = 0x85;
const RESP_METRICS: u8 = 0x86;
const RESP_SPANS: u8 = 0x87;
const RESP_DIGEST: u8 = 0x88;
const RESP_MEMBERSHIP: u8 = 0x89;
const RESP_ERROR: u8 = 0xFF;

/// Decode cap on spans per `Spans` response; a recorder holds a few
/// thousand records, so anything beyond this is garbage.
const MAX_SPANS: usize = 65_536;
/// Decode cap on key/value fields per span.
const MAX_SPAN_FIELDS: usize = 64;
/// Decode cap on membership entries — a view beyond this does not fit a
/// gossip frame and is garbage.
const MAX_MEMBERS: usize = 65_536;

fn encode_members(w: &mut Writer, members: &[(u64, String)]) {
    w.u32(members.len() as u32);
    for (id, addr) in members {
        w.u64(*id).bytes(addr.as_bytes());
    }
}

fn decode_members(r: &mut Reader) -> Result<Vec<(u64, String)>, ClusterError> {
    let n = r.u32("member count")? as usize;
    if n > MAX_MEMBERS {
        return Err(ClusterError::Decode("member count"));
    }
    let mut members = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let id = r.u64("member id")?;
        let addr = r.bytes("member addr")?;
        members.push((id, String::from_utf8_lossy(&addr).into_owned()));
    }
    Ok(members)
}

// ---- engine message opcodes ----
const MSG_PLACE_REQ: u8 = 0x10;
const MSG_ADD_REQ: u8 = 0x11;
const MSG_DELETE_REQ: u8 = 0x12;
const MSG_RESET: u8 = 0x13;
const MSG_STORE_SET: u8 = 0x14;
const MSG_CHOOSE_SUBSET: u8 = 0x15;
const MSG_STORE: u8 = 0x16;
const MSG_REMOVE: u8 = 0x17;
const MSG_SAMPLED_STORE: u8 = 0x18;
const MSG_COUNTED_REMOVE: u8 = 0x19;
const MSG_RR_INIT: u8 = 0x1A;
const MSG_RR_STORE: u8 = 0x1B;
const MSG_RR_REMOVE: u8 = 0x1C;
const MSG_MIGRATE_REQ: u8 = 0x1D;
const MSG_MIGRATE_REP: u8 = 0x1E;
const MSG_RR_REMOVE_AT: u8 = 0x1F;
const MSG_RR_SET_COUNTERS: u8 = 0x20;
const MSG_VERSIONED: u8 = 0x21;

// Strategy spec wire tags.
const SPEC_NONE: u8 = 0;
const SPEC_FULL: u8 = 1;
const SPEC_FIXED: u8 = 2;
const SPEC_RANDOM: u8 = 3;
const SPEC_ROUND: u8 = 4;
const SPEC_HASH: u8 = 5;

pub(crate) fn encode_spec(w: &mut Writer, spec: &Option<StrategySpec>) {
    match spec {
        None => {
            w.u8(SPEC_NONE);
        }
        Some(StrategySpec::FullReplication) => {
            w.u8(SPEC_FULL);
        }
        Some(StrategySpec::Fixed { x }) => {
            w.u8(SPEC_FIXED).u32(*x as u32);
        }
        Some(StrategySpec::RandomServer { x }) => {
            w.u8(SPEC_RANDOM).u32(*x as u32);
        }
        Some(StrategySpec::RoundRobin { y }) => {
            w.u8(SPEC_ROUND).u32(*y as u32);
        }
        Some(StrategySpec::Hash { y }) => {
            w.u8(SPEC_HASH).u32(*y as u32);
        }
    }
}

pub(crate) fn decode_spec(r: &mut Reader) -> Result<Option<StrategySpec>, ClusterError> {
    let tag = r.u8("spec tag")?;
    Ok(match tag {
        SPEC_NONE => None,
        SPEC_FULL => Some(StrategySpec::FullReplication),
        SPEC_FIXED => Some(StrategySpec::Fixed { x: r.u32("spec x")? as usize }),
        SPEC_RANDOM => Some(StrategySpec::RandomServer { x: r.u32("spec x")? as usize }),
        SPEC_ROUND => Some(StrategySpec::RoundRobin { y: r.u32("spec y")? as usize }),
        SPEC_HASH => Some(StrategySpec::Hash { y: r.u32("spec y")? as usize }),
        _ => return Err(ClusterError::Decode("spec tag")),
    })
}

pub(crate) fn encode_msg(w: &mut Writer, msg: &Message<Entry>) {
    match msg {
        Message::PlaceReq { entries } => {
            w.u8(MSG_PLACE_REQ).bytes_list(entries);
        }
        Message::AddReq { v } => {
            w.u8(MSG_ADD_REQ).bytes(v);
        }
        Message::DeleteReq { v } => {
            w.u8(MSG_DELETE_REQ).bytes(v);
        }
        Message::Reset => {
            w.u8(MSG_RESET);
        }
        Message::StoreSet { entries } => {
            w.u8(MSG_STORE_SET).bytes_list(entries);
        }
        Message::ChooseSubset { entries, x } => {
            w.u8(MSG_CHOOSE_SUBSET).u32(*x as u32).bytes_list(entries);
        }
        Message::Store { v } => {
            w.u8(MSG_STORE).bytes(v);
        }
        Message::Remove { v } => {
            w.u8(MSG_REMOVE).bytes(v);
        }
        Message::SampledStore { v, x } => {
            w.u8(MSG_SAMPLED_STORE).u32(*x as u32).bytes(v);
        }
        Message::CountedRemove { v } => {
            w.u8(MSG_COUNTED_REMOVE).bytes(v);
        }
        Message::RrInit { h } => {
            w.u8(MSG_RR_INIT).u64(*h);
        }
        Message::RrStore { v, pos } => {
            w.u8(MSG_RR_STORE).u64(*pos).bytes(v);
        }
        Message::RrRemove { v, head_pos } => {
            w.u8(MSG_RR_REMOVE).u64(*head_pos).bytes(v);
        }
        Message::MigrateReq { v, dest_pos } => {
            w.u8(MSG_MIGRATE_REQ).u64(*dest_pos).bytes(v);
        }
        Message::MigrateRep { v, dest_pos, replacement } => {
            w.u8(MSG_MIGRATE_REP).u64(*dest_pos).bytes(v);
            match replacement {
                Some(u) => {
                    w.u8(1).bytes(u);
                }
                None => {
                    w.u8(0);
                }
            }
        }
        Message::RrRemoveAt { pos } => {
            w.u8(MSG_RR_REMOVE_AT).u64(*pos);
        }
        Message::RrSetCounters { head, tail } => {
            w.u8(MSG_RR_SET_COUNTERS).u64(*head).u64(*tail);
        }
        Message::Versioned { version, stamp_ms, msg } => {
            w.u8(MSG_VERSIONED).u64(*version).u64(*stamp_ms);
            encode_msg(w, msg);
        }
    }
}

pub(crate) fn decode_msg(r: &mut Reader) -> Result<Message<Entry>, ClusterError> {
    let op = r.u8("msg opcode")?;
    let msg = match op {
        MSG_PLACE_REQ => Message::PlaceReq { entries: r.bytes_list("place entries")? },
        MSG_ADD_REQ => Message::AddReq { v: r.bytes("add entry")? },
        MSG_DELETE_REQ => Message::DeleteReq { v: r.bytes("delete entry")? },
        MSG_RESET => Message::Reset,
        MSG_STORE_SET => Message::StoreSet { entries: r.bytes_list("store set")? },
        MSG_CHOOSE_SUBSET => {
            let x = r.u32("choose x")? as usize;
            Message::ChooseSubset { entries: r.bytes_list("choose entries")?, x }
        }
        MSG_STORE => Message::Store { v: r.bytes("store entry")? },
        MSG_REMOVE => Message::Remove { v: r.bytes("remove entry")? },
        MSG_SAMPLED_STORE => {
            let x = r.u32("sampled x")? as usize;
            Message::SampledStore { v: r.bytes("sampled entry")?, x }
        }
        MSG_COUNTED_REMOVE => Message::CountedRemove { v: r.bytes("counted entry")? },
        MSG_RR_INIT => Message::RrInit { h: r.u64("rr h")? },
        MSG_RR_STORE => {
            let pos = r.u64("rr pos")?;
            Message::RrStore { v: r.bytes("rr entry")?, pos }
        }
        MSG_RR_REMOVE => {
            let head_pos = r.u64("rr head")?;
            Message::RrRemove { v: r.bytes("rr entry")?, head_pos }
        }
        MSG_MIGRATE_REQ => {
            let dest_pos = r.u64("migrate pos")?;
            Message::MigrateReq { v: r.bytes("migrate entry")?, dest_pos }
        }
        MSG_MIGRATE_REP => {
            let dest_pos = r.u64("migrate pos")?;
            let v = r.bytes("migrate entry")?;
            let replacement = match r.u8("replacement flag")? {
                0 => None,
                1 => Some(r.bytes("replacement")?),
                _ => return Err(ClusterError::Decode("replacement flag")),
            };
            Message::MigrateRep { v, dest_pos, replacement }
        }
        MSG_RR_REMOVE_AT => Message::RrRemoveAt { pos: r.u64("rr pos")? },
        MSG_RR_SET_COUNTERS => {
            Message::RrSetCounters { head: r.u64("rr head")?, tail: r.u64("rr tail")? }
        }
        MSG_VERSIONED => {
            let version = r.u64("versioned version")?;
            let stamp_ms = r.u64("versioned stamp")?;
            let inner = decode_msg(r)?;
            if matches!(inner, Message::Versioned { .. }) {
                // One level only: the engine never nests envelopes, so a
                // nested one is garbage (and unbounded recursion bait).
                return Err(ClusterError::Decode("nested versioned"));
            }
            Message::Versioned { version, stamp_ms, msg: Box::new(inner) }
        }
        _ => return Err(ClusterError::Decode("msg opcode")),
    };
    Ok(msg)
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            Request::Place { key, entries, spec } => {
                w.u8(REQ_PLACE).bytes(key).bytes_list(entries);
                encode_spec(&mut w, spec);
            }
            Request::Add { key, entry } => {
                w.u8(REQ_ADD).bytes(key).bytes(entry);
            }
            Request::Delete { key, entry } => {
                w.u8(REQ_DELETE).bytes(key).bytes(entry);
            }
            Request::Probe { key, t } => {
                w.u8(REQ_PROBE).bytes(key).u32(*t);
            }
            Request::Internal { from, key, spec, msg } => {
                w.u8(REQ_INTERNAL).u32(*from).bytes(key);
                encode_spec(&mut w, spec);
                encode_msg(&mut w, msg);
            }
            Request::Status => {
                w.u8(REQ_STATUS);
            }
            Request::Keys => {
                w.u8(REQ_KEYS);
            }
            Request::Snapshot { key } => {
                w.u8(REQ_SNAPSHOT).bytes(key);
            }
            Request::SpecOf { key } => {
                w.u8(REQ_SPEC_OF).bytes(key);
            }
            Request::Metrics { reset } => {
                w.u8(REQ_METRICS).u8(u8::from(*reset));
            }
            Request::Trace { req } => {
                w.u8(REQ_TRACE).u64(*req);
            }
            Request::Digest { key } => {
                w.u8(REQ_DIGEST).bytes(key);
            }
            Request::Membership { epoch, members } => {
                w.u8(REQ_MEMBERSHIP).u64(*epoch);
                encode_members(&mut w, members);
            }
            Request::JoinLeave { join, leave } => {
                w.u8(REQ_JOIN_LEAVE);
                match join {
                    Some(addr) => {
                        w.u8(1).bytes(addr.as_bytes());
                    }
                    None => {
                        w.u8(0);
                    }
                }
                match leave {
                    Some(id) => {
                        w.u8(1).u64(*id);
                    }
                    None => {
                        w.u8(0);
                    }
                }
            }
        }
        w.into_payload()
    }

    /// Decodes a request from a frame payload.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Decode`] on malformed input;
    /// [`ClusterError::Unsupported`] on a well-formed frame whose opcode
    /// this build does not implement.
    pub fn decode(payload: Bytes) -> Result<Self, ClusterError> {
        let mut r = Reader::new(payload);
        let op = r.u8("request opcode")?;
        let req = match op {
            REQ_PLACE => {
                let key = r.bytes("key")?;
                let entries = r.bytes_list("entries")?;
                let spec = decode_spec(&mut r)?;
                Request::Place { key, entries, spec }
            }
            REQ_ADD => Request::Add { key: r.bytes("key")?, entry: r.bytes("entry")? },
            REQ_DELETE => Request::Delete { key: r.bytes("key")?, entry: r.bytes("entry")? },
            REQ_PROBE => Request::Probe { key: r.bytes("key")?, t: r.u32("t")? },
            REQ_INTERNAL => {
                let from = r.u32("from")?;
                let key = r.bytes("key")?;
                let spec = decode_spec(&mut r)?;
                let msg = decode_msg(&mut r)?;
                Request::Internal { from, key, spec, msg }
            }
            REQ_STATUS => Request::Status,
            REQ_KEYS => Request::Keys,
            REQ_SNAPSHOT => Request::Snapshot { key: r.bytes("key")? },
            REQ_SPEC_OF => Request::SpecOf { key: r.bytes("key")? },
            REQ_METRICS => match r.u8("reset flag")? {
                0 => Request::Metrics { reset: false },
                1 => Request::Metrics { reset: true },
                _ => return Err(ClusterError::Decode("reset flag")),
            },
            REQ_TRACE => Request::Trace { req: r.u64("trace req")? },
            REQ_DIGEST => Request::Digest { key: r.bytes("key")? },
            REQ_MEMBERSHIP => {
                let epoch = r.u64("membership epoch")?;
                Request::Membership { epoch, members: decode_members(&mut r)? }
            }
            REQ_JOIN_LEAVE => {
                let join = match r.u8("join flag")? {
                    0 => None,
                    1 => {
                        let raw = r.bytes("join addr")?;
                        Some(String::from_utf8_lossy(&raw).into_owned())
                    }
                    _ => return Err(ClusterError::Decode("join flag")),
                };
                let leave = match r.u8("leave flag")? {
                    0 => None,
                    1 => Some(r.u64("leave id")?),
                    _ => return Err(ClusterError::Decode("leave flag")),
                };
                Request::JoinLeave { join, leave }
            }
            // An opcode this build has never heard of is not a framing
            // error: the frame was well-delimited, a *newer* peer simply
            // asked for something we don't implement. Refuse cleanly so
            // mixed-version clusters keep their connections.
            _ => return Err(ClusterError::Unsupported(op)),
        };
        r.finish("request")?;
        Ok(req)
    }

    /// The originating server as an endpoint, for `Internal` requests.
    pub fn internal_sender(from: u32) -> pls_net::Endpoint {
        pls_net::Endpoint::Server(ServerId::new(from))
    }

    /// The request's operation label, for per-variant counters.
    pub fn op(&self) -> ReqOp {
        match self {
            Request::Place { .. } => ReqOp::Place,
            Request::Add { .. } => ReqOp::Add,
            Request::Delete { .. } => ReqOp::Delete,
            Request::Probe { .. } => ReqOp::Probe,
            Request::Internal { .. } => ReqOp::Internal,
            Request::Status => ReqOp::Status,
            Request::Keys => ReqOp::Keys,
            Request::Snapshot { .. } => ReqOp::Snapshot,
            Request::SpecOf { .. } => ReqOp::SpecOf,
            Request::Metrics { .. } => ReqOp::Metrics,
            Request::Trace { .. } => ReqOp::Trace,
            Request::Digest { .. } => ReqOp::Digest,
            Request::Membership { .. } => ReqOp::Membership,
            Request::JoinLeave { .. } => ReqOp::JoinLeave,
        }
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            Response::Ok => {
                w.u8(RESP_OK);
            }
            Response::Entries(entries) => {
                w.u8(RESP_ENTRIES).bytes_list(entries);
            }
            Response::Status { keys, entries } => {
                w.u8(RESP_STATUS).u64(*keys).u64(*entries);
            }
            Response::Error(msg) => {
                w.u8(RESP_ERROR).bytes(msg.as_bytes());
            }
            Response::Keys(keys) => {
                w.u8(RESP_KEYS).bytes_list(keys);
            }
            Response::Snapshot { entries, positions, counters, version, tombstones, spec } => {
                w.u8(RESP_SNAPSHOT).bytes_list(entries);
                w.u32(positions.len() as u32);
                for (pos, v) in positions {
                    w.u64(*pos).bytes(v);
                }
                match counters {
                    Some((head, tail)) => {
                        w.u8(1).u64(*head).u64(*tail);
                    }
                    None => {
                        w.u8(0);
                    }
                }
                w.u64(*version);
                w.u32(tombstones.len() as u32);
                for (v, t) in tombstones {
                    w.bytes(v).u64(t.version).u64(t.born_ms);
                }
                encode_spec(&mut w, spec);
            }
            Response::SpecOf(spec) => {
                w.u8(RESP_SPEC_OF);
                encode_spec(&mut w, spec);
            }
            Response::Metrics(snap) => {
                w.u8(RESP_METRICS);
                w.u32(snap.counters.len() as u32);
                for (name, value) in &snap.counters {
                    w.bytes(name.as_bytes()).u64(*value);
                }
                // Gauges travel as their IEEE-754 bit patterns.
                w.u32(snap.gauges.len() as u32);
                for (name, value) in &snap.gauges {
                    w.bytes(name.as_bytes()).u64(value.to_bits());
                }
                w.u32(snap.histograms.len() as u32);
                for (name, h) in &snap.histograms {
                    w.bytes(name.as_bytes()).u64(h.count).u64(h.sum);
                    w.u32(BUCKETS as u32);
                    for b in &h.buckets {
                        w.u64(*b);
                    }
                }
            }
            Response::Digest {
                known,
                spec,
                count,
                entry_hash,
                positions_hash,
                version,
                counters,
            } => {
                w.u8(RESP_DIGEST).u8(u8::from(*known));
                encode_spec(&mut w, spec);
                w.u64(*count).u64(*entry_hash).u64(*positions_hash).u64(*version);
                match counters {
                    Some((head, tail)) => {
                        w.u8(1).u64(*head).u64(*tail);
                    }
                    None => {
                        w.u8(0);
                    }
                }
            }
            Response::Membership { epoch, members } => {
                w.u8(RESP_MEMBERSHIP).u64(*epoch);
                encode_members(&mut w, members);
            }
            Response::Spans(spans) => {
                w.u8(RESP_SPANS).u32(spans.len() as u32);
                for s in spans {
                    match s.req_id {
                        Some(id) => {
                            w.u8(1).u64(id);
                        }
                        None => {
                            w.u8(0);
                        }
                    }
                    w.bytes(s.name.as_bytes()).bytes(s.target.as_bytes());
                    w.u64(s.start_us).u64(s.elapsed_us);
                    w.u32(s.fields.len() as u32);
                    for (k, v) in &s.fields {
                        w.bytes(k.as_bytes()).bytes(v.as_bytes());
                    }
                }
            }
        }
        w.into_payload()
    }

    /// Decodes a response from a frame payload.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Decode`] on malformed input.
    pub fn decode(payload: Bytes) -> Result<Self, ClusterError> {
        let mut r = Reader::new(payload);
        let op = r.u8("response opcode")?;
        let resp = match op {
            RESP_OK => Response::Ok,
            RESP_ENTRIES => Response::Entries(r.bytes_list("entries")?),
            RESP_STATUS => Response::Status { keys: r.u64("keys")?, entries: r.u64("entries")? },
            RESP_ERROR => {
                let raw = r.bytes("error message")?;
                Response::Error(String::from_utf8_lossy(&raw).into_owned())
            }
            RESP_KEYS => Response::Keys(r.bytes_list("keys")?),
            RESP_SNAPSHOT => {
                let entries = r.bytes_list("snapshot entries")?;
                let count = r.u32("position count")? as usize;
                if count > crate::wire::MAX_FRAME / 8 {
                    return Err(ClusterError::Decode("position count"));
                }
                let mut positions = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let pos = r.u64("position")?;
                    positions.push((pos, r.bytes("position entry")?));
                }
                let counters = match r.u8("counter flag")? {
                    0 => None,
                    1 => Some((r.u64("head")?, r.u64("tail")?)),
                    _ => return Err(ClusterError::Decode("counter flag")),
                };
                let version = r.u64("snapshot version")?;
                let n_tombs = r.u32("tombstone count")? as usize;
                if n_tombs > crate::wire::MAX_FRAME / 8 {
                    return Err(ClusterError::Decode("tombstone count"));
                }
                let mut tombstones = Vec::with_capacity(n_tombs.min(1024));
                for _ in 0..n_tombs {
                    let v = r.bytes("tombstone entry")?;
                    let t_version = r.u64("tombstone version")?;
                    let born_ms = r.u64("tombstone born")?;
                    tombstones.push((v, Tombstone { version: t_version, born_ms }));
                }
                let spec = decode_spec(&mut r)?;
                Response::Snapshot { entries, positions, counters, version, tombstones, spec }
            }
            RESP_SPEC_OF => Response::SpecOf(decode_spec(&mut r)?),
            RESP_METRICS => {
                let n_counters = r.u32("counter count")? as usize;
                if n_counters > crate::wire::MAX_FRAME / 12 {
                    return Err(ClusterError::Decode("counter count"));
                }
                let mut snap = MetricsSnapshot::new();
                for _ in 0..n_counters {
                    let name = r.bytes("counter name")?;
                    let value = r.u64("counter value")?;
                    snap.push_counter(String::from_utf8_lossy(&name).into_owned(), value);
                }
                let n_gauges = r.u32("gauge count")? as usize;
                if n_gauges > crate::wire::MAX_FRAME / 12 {
                    return Err(ClusterError::Decode("gauge count"));
                }
                for _ in 0..n_gauges {
                    let name = r.bytes("gauge name")?;
                    let bits = r.u64("gauge value")?;
                    snap.push_gauge(
                        String::from_utf8_lossy(&name).into_owned(),
                        f64::from_bits(bits),
                    );
                }
                let n_hists = r.u32("histogram count")? as usize;
                if n_hists > 4096 {
                    return Err(ClusterError::Decode("histogram count"));
                }
                for _ in 0..n_hists {
                    let name = r.bytes("histogram name")?;
                    let count = r.u64("histogram obs count")?;
                    let sum = r.u64("histogram sum")?;
                    let n_buckets = r.u32("bucket count")? as usize;
                    if n_buckets > 1024 {
                        return Err(ClusterError::Decode("bucket count"));
                    }
                    // Fold any extra buckets from a newer peer into the
                    // overflow bucket; missing trailing buckets are zero.
                    let mut buckets = [0u64; BUCKETS];
                    for i in 0..n_buckets {
                        buckets[i.min(BUCKETS - 1)] += r.u64("bucket")?;
                    }
                    snap.push_histogram(
                        String::from_utf8_lossy(&name).into_owned(),
                        HistogramSnapshot { count, sum, buckets },
                    );
                }
                Response::Metrics(snap)
            }
            RESP_DIGEST => {
                let known = match r.u8("digest known")? {
                    0 => false,
                    1 => true,
                    _ => return Err(ClusterError::Decode("digest known")),
                };
                let spec = decode_spec(&mut r)?;
                let count = r.u64("digest count")?;
                let entry_hash = r.u64("digest entry hash")?;
                let positions_hash = r.u64("digest positions hash")?;
                let version = r.u64("digest version")?;
                let counters = match r.u8("digest counter flag")? {
                    0 => None,
                    1 => Some((r.u64("digest head")?, r.u64("digest tail")?)),
                    _ => return Err(ClusterError::Decode("digest counter flag")),
                };
                Response::Digest {
                    known,
                    spec,
                    count,
                    entry_hash,
                    positions_hash,
                    version,
                    counters,
                }
            }
            RESP_MEMBERSHIP => {
                let epoch = r.u64("membership epoch")?;
                Response::Membership { epoch, members: decode_members(&mut r)? }
            }
            RESP_SPANS => {
                let n_spans = r.u32("span count")? as usize;
                if n_spans > MAX_SPANS {
                    return Err(ClusterError::Decode("span count"));
                }
                let mut spans = Vec::with_capacity(n_spans.min(1024));
                for _ in 0..n_spans {
                    let req_id = match r.u8("span req flag")? {
                        0 => None,
                        1 => Some(r.u64("span req id")?),
                        _ => return Err(ClusterError::Decode("span req flag")),
                    };
                    let name = r.bytes("span name")?;
                    let target = r.bytes("span target")?;
                    let start_us = r.u64("span start")?;
                    let elapsed_us = r.u64("span elapsed")?;
                    let n_fields = r.u32("span field count")? as usize;
                    if n_fields > MAX_SPAN_FIELDS {
                        return Err(ClusterError::Decode("span field count"));
                    }
                    let mut fields = Vec::with_capacity(n_fields);
                    for _ in 0..n_fields {
                        let k = r.bytes("span field key")?;
                        let v = r.bytes("span field value")?;
                        fields.push((
                            String::from_utf8_lossy(&k).into_owned(),
                            String::from_utf8_lossy(&v).into_owned(),
                        ));
                    }
                    spans.push(SpanRecord {
                        req_id,
                        name: String::from_utf8_lossy(&name).into_owned(),
                        target: String::from_utf8_lossy(&target).into_owned(),
                        start_us,
                        elapsed_us,
                        fields,
                    });
                }
                Response::Spans(spans)
            }
            _ => return Err(ClusterError::Decode("response opcode")),
        };
        r.finish("response")?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_req(req: Request) {
        let decoded = Request::decode(req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    fn roundtrip_resp(resp: Response) {
        let decoded = Response::decode(resp.encode()).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Place {
            key: b"song".to_vec(),
            entries: vec![b"a".to_vec(), b"bb".to_vec()],
            spec: None,
        });
        for spec in [
            StrategySpec::full_replication(),
            StrategySpec::fixed(20),
            StrategySpec::random_server(7),
            StrategySpec::round_robin(2),
            StrategySpec::hash(3),
        ] {
            roundtrip_req(Request::Place {
                key: b"song".to_vec(),
                entries: vec![],
                spec: Some(spec),
            });
        }
        roundtrip_req(Request::Add { key: b"k".to_vec(), entry: b"e".to_vec() });
        roundtrip_req(Request::Delete { key: vec![], entry: vec![0, 1, 255] });
        roundtrip_req(Request::Probe { key: b"k".to_vec(), t: 42 });
        roundtrip_req(Request::Status);
        roundtrip_req(Request::Metrics { reset: false });
        roundtrip_req(Request::Metrics { reset: true });
        roundtrip_req(Request::Trace { req: 0xDEAD_BEEF });
        roundtrip_req(Request::Digest { key: b"song".to_vec() });
        roundtrip_req(Request::Digest { key: vec![] });
    }

    #[test]
    fn membership_frames_roundtrip() {
        roundtrip_req(Request::Membership { epoch: 0, members: vec![] });
        roundtrip_req(Request::Membership {
            epoch: 7,
            members: vec![(0, "10.0.0.1:7000".into()), (3, "10.0.0.4:7000".into())],
        });
        roundtrip_req(Request::JoinLeave { join: None, leave: None });
        roundtrip_req(Request::JoinLeave { join: Some("10.0.0.9:7000".into()), leave: None });
        roundtrip_req(Request::JoinLeave { join: None, leave: Some(2) });
        roundtrip_req(Request::JoinLeave { join: Some("a:1".into()), leave: Some(u64::MAX) });
        roundtrip_resp(Response::Membership { epoch: 0, members: vec![] });
        roundtrip_resp(Response::Membership {
            epoch: 42,
            members: vec![(1, "x:1".into()), (9, "y:2".into())],
        });
        // A member count beyond the cap is rejected outright.
        let mut w = Writer::new();
        w.u8(REQ_MEMBERSHIP).u64(1).u32(u32::MAX);
        assert!(Request::decode(w.into_payload()).is_err());
        // Bogus join/leave flags are rejected.
        let mut w = Writer::new();
        w.u8(REQ_JOIN_LEAVE).u8(9);
        assert!(Request::decode(w.into_payload()).is_err());
    }

    #[test]
    fn unknown_request_opcode_is_unsupported_not_decode() {
        // The rollout contract: a frame from a newer peer with an opcode
        // this build has never heard of is a clean `Unsupported` refusal,
        // not a decode failure — the connection stays healthy.
        for op in [0x0Fu8, 0x42, 0x77] {
            match Request::decode(Bytes::copy_from_slice(&[op, 1, 2, 3])) {
                Err(ClusterError::Unsupported(got)) => assert_eq!(got, op),
                other => panic!("opcode {op:#04x}: expected Unsupported, got {other:?}"),
            }
        }
        // A *known* opcode with a malformed body is still a decode error.
        assert!(matches!(
            Request::decode(Bytes::copy_from_slice(&[REQ_PROBE])),
            Err(ClusterError::Decode(_))
        ));
    }

    #[test]
    fn digest_response_roundtrips() {
        roundtrip_resp(Response::Digest {
            known: false,
            spec: None,
            count: 0,
            entry_hash: 0,
            positions_hash: 0,
            version: 0,
            counters: None,
        });
        roundtrip_resp(Response::Digest {
            known: true,
            spec: Some(StrategySpec::round_robin(2)),
            count: 17,
            entry_hash: 0xDEAD_BEEF_DEAD_BEEF,
            positions_hash: u64::MAX,
            version: 42,
            counters: Some((4, 21)),
        });
        // A bogus known flag is rejected.
        let mut w = Writer::new();
        w.u8(RESP_DIGEST).u8(9);
        assert!(Response::decode(w.into_payload()).is_err());
    }

    #[test]
    fn spans_response_roundtrips() {
        roundtrip_resp(Response::Spans(Vec::new()));
        roundtrip_resp(Response::Spans(vec![
            SpanRecord {
                req_id: Some(42),
                name: "partial_lookup".into(),
                target: "pls_cluster::client".into(),
                start_us: 1_700_000_000_000_000,
                elapsed_us: 1234,
                fields: vec![("server".into(), "2".into()), ("service_us".into(), "87".into())],
            },
            SpanRecord {
                req_id: None,
                name: "resync_from_peers".into(),
                target: "pls_cluster::server".into(),
                start_us: 0,
                elapsed_us: u64::MAX,
                fields: Vec::new(),
            },
        ]));
    }

    #[test]
    fn spans_decode_caps_are_enforced() {
        // A span count beyond the cap is rejected outright.
        let mut w = Writer::new();
        w.u8(RESP_SPANS).u32(u32::MAX);
        assert!(Response::decode(w.into_payload()).is_err());
        // A bogus req-id flag is rejected.
        let mut w = Writer::new();
        w.u8(RESP_SPANS).u32(1).u8(9);
        assert!(Response::decode(w.into_payload()).is_err());
    }

    #[test]
    fn internal_message_roundtrips() {
        let msgs: Vec<Message<Entry>> = vec![
            Message::PlaceReq { entries: vec![b"x".to_vec()] },
            Message::AddReq { v: b"v".to_vec() },
            Message::DeleteReq { v: b"v".to_vec() },
            Message::Reset,
            Message::StoreSet { entries: vec![] },
            Message::ChooseSubset { entries: vec![b"a".to_vec()], x: 3 },
            Message::Store { v: b"v".to_vec() },
            Message::Remove { v: b"v".to_vec() },
            Message::SampledStore { v: b"v".to_vec(), x: 20 },
            Message::CountedRemove { v: b"v".to_vec() },
            Message::RrInit { h: 100 },
            Message::RrStore { v: b"v".to_vec(), pos: 7 },
            Message::RrRemove { v: b"v".to_vec(), head_pos: 3 },
            Message::MigrateReq { v: b"v".to_vec(), dest_pos: 9 },
            Message::MigrateRep { v: b"v".to_vec(), dest_pos: 9, replacement: None },
            Message::MigrateRep { v: b"v".to_vec(), dest_pos: 9, replacement: Some(b"u".to_vec()) },
            Message::RrRemoveAt { pos: 11 },
            Message::RrSetCounters { head: 4, tail: 19 },
        ];
        for msg in msgs {
            roundtrip_req(Request::Internal { from: 2, key: b"k".to_vec(), spec: None, msg });
        }
        roundtrip_req(Request::Internal {
            from: 0,
            key: b"k".to_vec(),
            spec: Some(StrategySpec::round_robin(2)),
            msg: Message::Reset,
        });
    }

    #[test]
    fn versioned_messages_roundtrip() {
        for inner in [
            Message::AddReq { v: b"v".to_vec() },
            Message::RrRemove { v: b"v".to_vec(), head_pos: 3 },
            Message::StoreSet { entries: vec![b"a".to_vec(), b"b".to_vec()] },
        ] {
            roundtrip_req(Request::Internal {
                from: 1,
                key: b"k".to_vec(),
                spec: None,
                msg: Message::Versioned {
                    version: 99,
                    stamp_ms: 1_700_000_000_000,
                    msg: Box::new(inner),
                },
            });
        }
    }

    #[test]
    fn nested_versioned_envelopes_are_rejected() {
        let msg: Message<Entry> = Message::Versioned {
            version: 2,
            stamp_ms: 10,
            msg: Box::new(Message::Versioned {
                version: 1,
                stamp_ms: 5,
                msg: Box::new(Message::Reset),
            }),
        };
        let req = Request::Internal { from: 0, key: b"k".to_vec(), spec: None, msg };
        assert!(Request::decode(req.encode()).is_err());
    }

    #[test]
    fn snapshot_response_roundtrips() {
        roundtrip_resp(Response::Snapshot {
            entries: vec![],
            positions: vec![],
            counters: None,
            version: 0,
            tombstones: vec![],
            spec: None,
        });
        roundtrip_resp(Response::Snapshot {
            entries: vec![b"a".to_vec(), b"bb".to_vec()],
            positions: vec![(3, b"a".to_vec())],
            counters: Some((1, 9)),
            version: 17,
            tombstones: vec![
                (b"gone".to_vec(), Tombstone { version: 12, born_ms: 1_700_000_000_000 }),
                (b"older".to_vec(), Tombstone { version: 4, born_ms: 0 }),
            ],
            spec: Some(StrategySpec::round_robin(2)),
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Entries(vec![b"x".to_vec(), vec![]]));
        roundtrip_resp(Response::Status { keys: 3, entries: 999 });
        roundtrip_resp(Response::Error("kaput".into()));
    }

    #[test]
    fn metrics_response_roundtrips() {
        roundtrip_resp(Response::Metrics(MetricsSnapshot::new()));
        let hist = {
            let h = pls_telemetry::Histogram::new();
            h.observe(1);
            h.observe(3);
            h.observe(1 << 20);
            h.snapshot()
        };
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("pls_requests_total{op=\"probe\"}", 42);
        snap.push_counter("pls_keys", 3);
        snap.push_gauge("pls_live_unfairness", 0.375);
        snap.push_gauge("pls_live_coverage", 1.0);
        snap.push_histogram("pls_client_probes_per_lookup", hist);
        roundtrip_resp(Response::Metrics(snap));
    }

    #[test]
    fn metrics_gauges_roundtrip_exact_bits() {
        // Gauges travel as raw IEEE-754 bits, so even awkward values
        // (subnormals, negative zero) survive the wire untouched.
        let mut snap = MetricsSnapshot::new();
        snap.push_gauge("g_tiny", f64::MIN_POSITIVE / 2.0);
        snap.push_gauge("g_negzero", -0.0);
        snap.push_gauge("g_third", 1.0 / 3.0);
        let decoded = match Response::decode(Response::Metrics(snap.clone()).encode()).unwrap() {
            Response::Metrics(s) => s,
            other => panic!("unexpected response {other:?}"),
        };
        for (name, value) in &snap.gauges {
            assert_eq!(
                decoded.gauge(name).unwrap().to_bits(),
                value.to_bits(),
                "gauge {name} changed on the wire"
            );
        }
    }

    #[test]
    fn metrics_reset_flag_is_validated() {
        let mut w = Writer::new();
        w.u8(REQ_METRICS).u8(7);
        assert!(Request::decode(w.into_payload()).is_err());
    }

    #[test]
    fn junk_is_rejected_not_panicking() {
        assert!(Request::decode(Bytes::from_static(&[0x77])).is_err());
        assert!(Response::decode(Bytes::from_static(&[])).is_err());
        // Truncated internal message.
        let mut w = Writer::new();
        w.u8(REQ_INTERNAL).u32(1).bytes(b"k").u8(SPEC_NONE).u8(MSG_RR_STORE).u64(3);
        assert!(Request::decode(w.into_payload()).is_err());
    }

    proptest! {
        /// Arbitrary byte payloads never panic the decoder.
        #[test]
        fn decoder_is_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Request::decode(Bytes::from(data.clone()));
            let _ = Response::decode(Bytes::from(data));
        }

        /// Arbitrary probe/add requests roundtrip.
        #[test]
        fn fuzz_roundtrip(key in proptest::collection::vec(any::<u8>(), 0..32),
                          entry in proptest::collection::vec(any::<u8>(), 0..32),
                          t in any::<u32>()) {
            roundtrip_req(Request::Probe { key: key.clone(), t });
            roundtrip_req(Request::Add { key, entry });
        }
    }
}
