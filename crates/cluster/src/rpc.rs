//! Pooled per-peer RPC connections.
//!
//! Each [`PeerClient`] keeps a small pool of TCP connections to one peer.
//! A call takes a connection out of the pool (or dials a new one),
//! performs a single request/response exchange, and returns the
//! connection. Crucially, **no lock is held while a response is
//! awaited**: concurrent calls to the same peer simply use different
//! connections. A single mutually-exclusive connection would deadlock
//! the round-robin migration protocol, whose RPC graph contains cycles
//! (coordinator → holder → head server → holder).
//!
//! Ordering: messages whose relative order matters (a coordinator's
//! `Reset` before its `RrStore`s, a head server's `MigrateRep` before its
//! `RrRemoveAt`) are sent *sequentially from one task*, each awaited
//! before the next is issued — so they are ordered by causality, not by
//! connection.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

use pls_telemetry::{Counter, MetricsSnapshot};
use tokio::net::TcpStream;

use crate::error::ClusterError;
use crate::proto::{Request, Response};
use crate::retry::{Breaker, BreakerConfig, Deadline, RetryPolicy, Timeouts};
use crate::wire::{read_frame_timed, write_frame};

/// Connections kept per peer; extras beyond this are closed on return.
const POOL_SIZE: usize = 4;

/// Pool accounting for one [`PeerClient`]: how connections are
/// obtained (fresh dial vs. pool reuse) and how they leave the pool
/// (discarded after an error, evicted over capacity). All counters are
/// relaxed atomics — no lock beyond the pool's own.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Fresh TCP dials attempted.
    pub dials: Counter,
    /// Dials that failed to connect.
    pub dial_failures: Counter,
    /// Calls served by a pooled connection.
    pub reuses: Counter,
    /// Connections dropped after an exchange error (never re-pooled).
    pub discarded: Counter,
    /// Healthy connections closed because the pool was full.
    pub evicted: Counter,
    /// Calls that ran out of time: a dial past the connect timeout or
    /// an exchange past its per-RPC deadline.
    pub timeouts: Counter,
    /// Attempts re-issued by [`PeerClient::call_retry`] after a
    /// retryable failure.
    pub retries: Counter,
}

/// Performs one request/response exchange on an established stream,
/// stamping the outgoing frame with `request_id`, and returns the
/// response together with the **service time** the server echoed in
/// the reply frame (microseconds the server spent handling the
/// request; zero from servers that don't stamp it). The response frame
/// must echo the same id — a mismatch means the stream is answering
/// some other request (desynchronized) and is a protocol error.
pub async fn exchange_timed(
    stream: &mut TcpStream,
    request_id: u64,
    req: &Request,
) -> Result<(Response, u64), ClusterError> {
    write_frame(stream, request_id, &req.encode()).await?;
    let (echoed_id, service_us, payload) = read_frame_timed(stream)
        .await?
        .ok_or_else(|| ClusterError::Io(std::io::ErrorKind::UnexpectedEof.into()))?;
    if echoed_id != request_id {
        return Err(ClusterError::Decode("response id"));
    }
    Ok((Response::decode(payload)?, service_us))
}

/// [`exchange_timed`], discarding the echoed service time.
pub async fn exchange(
    stream: &mut TcpStream,
    request_id: u64,
    req: &Request,
) -> Result<Response, ClusterError> {
    Ok(exchange_timed(stream, request_id, req).await?.0)
}

/// A lazily-connected pool of RPC connections to one peer address.
///
/// Every call is **time-bounded** ([`Timeouts`]): dials are capped by
/// the connect timeout, whole attempts by the per-RPC deadline. A
/// per-peer circuit [`Breaker`] tracks consecutive failures and
/// fast-fails calls against a peer that keeps timing out, so a
/// black-holed server costs one deadline per cooldown instead of one
/// per call.
#[derive(Debug)]
pub struct PeerClient {
    addr: SocketAddr,
    pool: Mutex<Vec<TcpStream>>,
    stats: PoolStats,
    timeouts: Timeouts,
    breaker: Breaker,
}

impl PeerClient {
    /// Creates a client for `addr` with default time bounds and breaker
    /// tuning; no connection is made until the first call.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_policies(addr, Timeouts::default(), BreakerConfig::default())
    }

    /// Creates a client with explicit time bounds and breaker tuning.
    pub fn with_policies(addr: SocketAddr, timeouts: Timeouts, breaker: BreakerConfig) -> Self {
        PeerClient {
            addr,
            pool: Mutex::new(Vec::new()),
            stats: PoolStats::default(),
            timeouts,
            breaker: Breaker::new(breaker),
        }
    }

    /// The peer's address.
    #[allow(dead_code)] // kept for diagnostics
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This client's pool accounting.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// This client's circuit breaker.
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    /// This client's time bounds.
    pub fn timeouts(&self) -> &Timeouts {
        &self.timeouts
    }

    /// Whether the peer currently looks healthy (no failure streak, no
    /// open circuit). Probe orders sort unhealthy peers to the tail.
    pub fn healthy(&self) -> bool {
        self.breaker.healthy()
    }

    /// Forgets this peer's accumulated health state: the breaker closes
    /// and the failure streak clears, so probe orders stop demoting it.
    /// Called when membership changes re-scope the peer — a departed
    /// server must stop consuming half-open trials and retry budget,
    /// and a rejoining one starts with a clean slate. (Pooled
    /// connections are left alone; a stale one is discarded and
    /// redialed on its next use anyway.)
    pub fn reset_health(&self) {
        self.breaker.reset();
    }

    /// Connections currently idle in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.lock().expect("pool lock").len()
    }

    fn take(&self) -> Option<TcpStream> {
        self.pool.lock().expect("pool lock").pop()
    }

    /// Returns a connection to the pool. Only ever called after a fully
    /// successful request/response exchange: a connection that saw any
    /// error is poisoned (its stream may be desynchronized mid-frame)
    /// and must be dropped, never re-pooled.
    fn put_back(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("pool lock");
        if pool.len() < POOL_SIZE {
            pool.push(stream);
        } else {
            self.stats.evicted.inc();
        }
    }

    /// Sends `req` stamped with `request_id` and awaits the response,
    /// bounded by the configured per-RPC deadline and guarded by the
    /// peer's circuit breaker.
    ///
    /// # Errors
    ///
    /// I/O errors (peer unreachable / connection torn mid-exchange);
    /// [`ClusterError::Timeout`] when the dial or the exchange runs out
    /// of time; [`ClusterError::PeerUnhealthy`] when the breaker is
    /// open; decode errors (including a response whose frame id does
    /// not echo `request_id`); any [`Response::Error`] is surfaced as
    /// [`ClusterError::Remote`].
    pub async fn call(&self, request_id: u64, req: &Request) -> Result<Response, ClusterError> {
        self.call_bounded(request_id, req, self.timeouts.rpc).await
    }

    /// [`PeerClient::call`], also returning the service time the peer
    /// echoed in its reply frame (microseconds of server-side work).
    pub async fn call_timed(
        &self,
        request_id: u64,
        req: &Request,
    ) -> Result<(Response, u64), ClusterError> {
        self.call_bounded_timed(request_id, req, self.timeouts.rpc).await
    }

    /// [`PeerClient::call`] with an explicit attempt deadline — the
    /// per-RPC deadline already capped to an operation's remaining
    /// budget by the caller.
    pub async fn call_bounded(
        &self,
        request_id: u64,
        req: &Request,
        limit: Duration,
    ) -> Result<Response, ClusterError> {
        Ok(self.call_bounded_timed(request_id, req, limit).await?.0)
    }

    /// [`PeerClient::call_bounded`], also returning the echoed service
    /// time from the reply frame.
    pub async fn call_bounded_timed(
        &self,
        request_id: u64,
        req: &Request,
        limit: Duration,
    ) -> Result<(Response, u64), ClusterError> {
        if limit.is_zero() {
            // The operation's budget is already spent.
            return Err(ClusterError::Timeout("op-budget"));
        }
        if !self.breaker.admit() {
            return Err(ClusterError::PeerUnhealthy);
        }
        let result = match tokio::time::timeout(limit, self.call_once(request_id, req)).await {
            Ok(res) => res,
            Err(_elapsed) => {
                // The in-flight connection was dropped with the future:
                // it may still answer later and must never be re-pooled.
                self.stats.timeouts.inc();
                pls_telemetry::debug!(
                    "rpc_timeout",
                    req = request_id,
                    addr = self.addr,
                    limit_ms = limit.as_millis()
                );
                Err(ClusterError::Timeout("rpc"))
            }
        };
        match &result {
            // A well-formed reply — even an application-level error or
            // an "I don't implement that opcode" refusal — proves the
            // peer alive; anything else feeds its breaker.
            Ok(_) | Err(ClusterError::Remote(_)) | Err(ClusterError::Unsupported(_)) => {
                self.breaker.record_success()
            }
            Err(_) => self.breaker.record_failure(),
        }
        result
    }

    /// [`PeerClient::call_bounded`] with bounded, jittered retries:
    /// attempts are re-issued on unavailability errors (I/O, timeout)
    /// until `policy.max_attempts` or `deadline` runs out, sleeping a
    /// full-jitter backoff between attempts. A breaker fast-fail is
    /// *not* retried — the breaker exists to stop exactly that traffic.
    pub async fn call_retry(
        &self,
        request_id: u64,
        req: &Request,
        policy: &RetryPolicy,
        deadline: Deadline,
    ) -> Result<Response, ClusterError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let limit = deadline.cap(self.timeouts.rpc);
            match self.call_bounded(request_id, req, limit).await {
                Ok(resp) => return Ok(resp),
                Err(err)
                    if err.is_unavailable()
                        && !matches!(err, ClusterError::PeerUnhealthy)
                        && attempt < policy.max_attempts
                        && !deadline.expired() =>
                {
                    self.stats.retries.inc();
                    pls_telemetry::debug!(
                        "rpc_retry",
                        req = request_id,
                        addr = self.addr,
                        attempt = attempt,
                        err = err
                    );
                    let pause =
                        deadline.cap(policy.delay(attempt, request_id ^ u64::from(attempt)));
                    tokio::time::sleep(pause).await;
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// One attempt on a pooled or fresh connection. A stale pooled
    /// connection is retried once with a fresh dial; a connection that
    /// errors in any way is discarded, never returned to the pool.
    async fn call_once(
        &self,
        request_id: u64,
        req: &Request,
    ) -> Result<(Response, u64), ClusterError> {
        if let Some(mut stream) = self.take() {
            self.stats.reuses.inc();
            match exchange_timed(&mut stream, request_id, req).await {
                Ok(resp) => {
                    self.put_back(stream);
                    return ok_or_remote(resp);
                }
                Err(ClusterError::Io(_)) => {
                    // Stale pooled connection: drop it and retry once on
                    // a fresh dial.
                    self.stats.discarded.inc();
                }
                Err(other) => {
                    // Protocol violation mid-exchange: the stream may be
                    // desynchronized — poison it (drop, don't re-pool).
                    self.stats.discarded.inc();
                    return Err(other);
                }
            }
        }
        self.stats.dials.inc();
        pls_telemetry::event!(
            pls_telemetry::Level::Trace,
            "peer_dial",
            req = request_id,
            addr = self.addr
        );
        let dialed = tokio::time::timeout(self.timeouts.connect, TcpStream::connect(self.addr));
        let mut stream = match dialed.await {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => {
                self.stats.dial_failures.inc();
                return Err(e.into());
            }
            Err(_elapsed) => {
                self.stats.dial_failures.inc();
                self.stats.timeouts.inc();
                return Err(ClusterError::Timeout("connect"));
            }
        };
        match exchange_timed(&mut stream, request_id, req).await {
            Ok(resp) => {
                self.put_back(stream);
                ok_or_remote(resp)
            }
            Err(err) => {
                self.stats.discarded.inc();
                Err(err)
            }
        }
    }
}

/// The error-frame prefix an older server uses to refuse an opcode it
/// does not implement (see `serve_connection`); recognized here so the
/// caller gets a typed [`ClusterError::Unsupported`] back instead of a
/// generic remote error.
pub(crate) const UNSUPPORTED_PREFIX: &str = "unsupported request opcode ";

fn ok_or_remote((resp, service_us): (Response, u64)) -> Result<(Response, u64), ClusterError> {
    match resp {
        Response::Error(msg) => {
            if let Some(op) = msg
                .strip_prefix(UNSUPPORTED_PREFIX)
                .and_then(|rest| rest.strip_prefix("0x"))
                .and_then(|hex| u8::from_str_radix(hex, 16).ok())
            {
                return Err(ClusterError::Unsupported(op));
            }
            Err(ClusterError::Remote(msg))
        }
        other => Ok((other, service_us)),
    }
}

/// Appends the robustness totals of a set of peer clients to a metrics
/// snapshot: RPC timeouts and retries (from [`PoolStats`]) and circuit
/// breaker opens / fast-fails, summed over every peer. Used by both the
/// server's metrics collection and the client's snapshot, so
/// `pls_rpc_timeouts_total` means the same thing everywhere.
pub(crate) fn push_peer_robustness<'a>(
    s: &mut MetricsSnapshot,
    peers: impl IntoIterator<Item = &'a PeerClient>,
) {
    let (mut timeouts, mut retries, mut opens, mut fast_fails) = (0u64, 0u64, 0u64, 0u64);
    for peer in peers {
        timeouts += peer.stats().timeouts.get();
        retries += peer.stats().retries.get();
        opens += peer.breaker().opens.get();
        fast_fails += peer.breaker().fast_fails.get();
    }
    s.push_counter("pls_rpc_timeouts_total", timeouts);
    s.push_counter("pls_rpc_retries_total", retries);
    s.push_counter("pls_breaker_opens_total", opens);
    s.push_counter("pls_breaker_fast_fails_total", fast_fails);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_frame;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    use tokio::net::TcpListener;

    /// A toy server answering every request with `Ok`, echoing ids.
    async fn spawn_ok_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                tokio::spawn(async move {
                    while let Ok(Some((id, payload))) = read_frame(&mut sock).await {
                        let _ = Request::decode(payload);
                        if write_frame(&mut sock, id, &Response::Ok.encode()).await.is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[tokio::test]
    async fn call_roundtrip_and_reuse() {
        let addr = spawn_ok_server().await;
        let client = PeerClient::new(addr);
        for id in 0..5 {
            let resp = client.call(id, &Request::Status).await.unwrap();
            assert_eq!(resp, Response::Ok);
        }
        // The pool holds the reused connection.
        assert_eq!(client.pooled(), 1);
        // One dial, four pool reuses, nothing discarded.
        assert_eq!(client.stats().dials.get(), 1);
        assert_eq!(client.stats().reuses.get(), 4);
        assert_eq!(client.stats().discarded.get(), 0);
        assert_eq!(client.stats().dial_failures.get(), 0);
    }

    #[tokio::test]
    async fn concurrent_calls_use_separate_connections() {
        let addr = spawn_ok_server().await;
        let client = std::sync::Arc::new(PeerClient::new(addr));
        let mut tasks = Vec::new();
        for id in 0..8 {
            let c = std::sync::Arc::clone(&client);
            tasks.push(tokio::spawn(async move { c.call(id, &Request::Status).await }));
        }
        for t in tasks {
            assert_eq!(t.await.unwrap().unwrap(), Response::Ok);
        }
        // Pool is capped.
        assert!(client.pool.lock().unwrap().len() <= POOL_SIZE);
    }

    #[tokio::test]
    async fn call_timed_surfaces_echoed_service_time() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let (id, _) = read_frame(&mut sock).await.unwrap().unwrap();
            crate::wire::write_frame_timed(&mut sock, id, 4321, &Response::Ok.encode())
                .await
                .unwrap();
        });
        let client = PeerClient::new(addr);
        let (resp, service_us) = client.call_timed(1, &Request::Status).await.unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(service_us, 4321);
    }

    #[tokio::test]
    async fn remote_error_is_surfaced() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let (id, _) = read_frame(&mut sock).await.unwrap().unwrap();
            write_frame(&mut sock, id, &Response::Error("nope".into()).encode()).await.unwrap();
        });
        let client = PeerClient::new(addr);
        let err = client.call(1, &Request::Status).await.unwrap_err();
        assert_eq!(err, ClusterError::Remote("nope".into()));
    }

    #[tokio::test]
    async fn unsupported_refusal_keeps_connection_and_breaker_healthy() {
        // An "old server" that predates the membership RPCs: any frame
        // carrying opcode 0x0D gets the clean refusal frame, everything
        // else is answered normally — all on the same connection, the
        // mixed-version rollout contract.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            while let Ok(Some((id, payload))) = read_frame(&mut sock).await {
                let resp = if payload.first() == Some(&0x0D) {
                    Response::Error(format!("{UNSUPPORTED_PREFIX}{:#04x}", 0x0D))
                } else {
                    Response::Ok
                };
                if write_frame(&mut sock, id, &resp.encode()).await.is_err() {
                    return;
                }
            }
        });
        let client = PeerClient::new(addr);
        // A membership fetch against the old server: the refusal comes
        // back as a *typed* Unsupported, not a generic remote error.
        let err = client
            .call(9, &Request::Membership { epoch: 0, members: Vec::new() })
            .await
            .unwrap_err();
        assert_eq!(err, ClusterError::Unsupported(0x0D));
        // The exchange completed cleanly, so the connection went back to
        // the pool (not poisoned) and the breaker saw proof of life.
        assert_eq!(client.pooled(), 1);
        assert_eq!(client.stats().discarded.get(), 0);
        assert!(client.healthy());
        // The very same connection keeps serving ordinary requests.
        assert_eq!(client.call(10, &Request::Status).await.unwrap(), Response::Ok);
        assert_eq!(client.stats().dials.get(), 1);
        assert_eq!(client.stats().reuses.get(), 1);
        // A remote error that is not the refusal shape stays Remote.
        let generic = ok_or_remote((Response::Error("kaput".into()), 0));
        assert_eq!(generic.unwrap_err(), ClusterError::Remote("kaput".into()));
    }

    #[tokio::test]
    async fn reset_health_closes_an_open_breaker() {
        let addr = spawn_black_hole().await;
        let cfg = BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(3600) };
        let client = PeerClient::with_policies(addr, tight_timeouts(), cfg);
        let _ = client.call(1, &Request::Status).await;
        assert!(!client.healthy());
        assert_eq!(
            client.call(2, &Request::Status).await.unwrap_err(),
            ClusterError::PeerUnhealthy
        );
        client.reset_health();
        assert!(client.healthy(), "membership change must clear the breaker");
        // The next call reaches the network again (and times out there,
        // not in the breaker).
        assert_eq!(
            client.call(3, &Request::Status).await.unwrap_err(),
            ClusterError::Timeout("rpc")
        );
    }

    #[tokio::test]
    async fn reconnects_after_peer_drops_connection() {
        // A server that closes each connection after one exchange.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                if let Ok(Some((id, _))) = read_frame(&mut sock).await {
                    let _ = write_frame(&mut sock, id, &Response::Ok.encode()).await;
                }
                // Drop the socket: next call must reconnect.
            }
        });
        let client = PeerClient::new(addr);
        assert_eq!(client.call(1, &Request::Status).await.unwrap(), Response::Ok);
        assert_eq!(client.call(2, &Request::Status).await.unwrap(), Response::Ok);
    }

    #[tokio::test]
    async fn unreachable_peer_errors() {
        // Bind-then-drop to get a (very likely) dead port.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = PeerClient::new(addr);
        assert!(matches!(client.call(1, &Request::Status).await, Err(ClusterError::Io(_))));
    }

    #[tokio::test]
    async fn garbage_response_is_decode_error() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let mut buf = [0u8; 64];
            let _ = sock.read(&mut buf).await;
            // A valid frame echoing id 7, with an invalid opcode.
            sock.write_all(&[0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 7, 0x33]).await.unwrap();
        });
        let client = PeerClient::new(addr);
        assert!(matches!(client.call(7, &Request::Status).await, Err(ClusterError::Decode(_))));
        // The desynchronized connection is poisoned: dropped, not
        // returned to the pool.
        assert_eq!(client.pooled(), 0);
        assert_eq!(client.stats().discarded.get(), 1);
    }

    #[tokio::test]
    async fn mismatched_response_id_is_rejected_and_poisons_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let _ = read_frame(&mut sock).await;
            // Answer with a valid `Ok` frame stamped with the wrong id.
            write_frame(&mut sock, 999, &Response::Ok.encode()).await.unwrap();
        });
        let client = PeerClient::new(addr);
        let err = client.call(5, &Request::Status).await.unwrap_err();
        assert_eq!(err, ClusterError::Decode("response id"));
        assert_eq!(client.pooled(), 0);
        assert_eq!(client.stats().discarded.get(), 1);
    }

    #[tokio::test]
    async fn stale_pooled_connection_is_discarded_and_redialed() {
        // A server that closes each connection after one exchange: the
        // second call finds a dead pooled connection, discards it, and
        // succeeds on a fresh dial.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                if let Ok(Some((id, _))) = read_frame(&mut sock).await {
                    let _ = write_frame(&mut sock, id, &Response::Ok.encode()).await;
                }
            }
        });
        let client = PeerClient::new(addr);
        assert_eq!(client.call(1, &Request::Status).await.unwrap(), Response::Ok);
        assert_eq!(client.call(2, &Request::Status).await.unwrap(), Response::Ok);
        assert_eq!(client.stats().dials.get(), 2);
        assert_eq!(client.stats().reuses.get(), 1);
        assert_eq!(client.stats().discarded.get(), 1);
    }

    #[tokio::test]
    async fn failed_dial_is_counted() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = PeerClient::new(addr);
        assert!(client.call(1, &Request::Status).await.is_err());
        assert_eq!(client.stats().dials.get(), 1);
        assert_eq!(client.stats().dial_failures.get(), 1);
        assert_eq!(client.pooled(), 0);
    }

    #[tokio::test]
    async fn pool_eviction_over_capacity_is_counted() {
        let addr = spawn_ok_server().await;
        let client = std::sync::Arc::new(PeerClient::new(addr));
        // Far more concurrent calls than POOL_SIZE: every call dials (the
        // pool starts empty and all calls are in flight together), and
        // only POOL_SIZE connections fit back.
        let mut tasks = Vec::new();
        let barrier = std::sync::Arc::new(tokio::sync::Barrier::new(POOL_SIZE * 3));
        for id in 0..(POOL_SIZE * 3) as u64 {
            let c = std::sync::Arc::clone(&client);
            let b = std::sync::Arc::clone(&barrier);
            tasks.push(tokio::spawn(async move {
                b.wait().await;
                c.call(id, &Request::Status).await
            }));
        }
        for t in tasks {
            assert_eq!(t.await.unwrap().unwrap(), Response::Ok);
        }
        assert!(client.pooled() <= POOL_SIZE);
        let s = client.stats();
        assert_eq!(s.dials.get() + s.reuses.get(), (POOL_SIZE * 3) as u64);
        // Every healthy connection either sits in the pool or was
        // evicted over capacity.
        assert_eq!(s.dials.get(), client.pooled() as u64 + s.evicted.get());
    }

    /// A black hole: accepts TCP, reads forever, never replies.
    async fn spawn_black_hole() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                tokio::spawn(async move {
                    let mut buf = [0u8; 1024];
                    while matches!(sock.read(&mut buf).await, Ok(n) if n > 0) {}
                });
            }
        });
        addr
    }

    fn tight_timeouts() -> Timeouts {
        Timeouts::default().with_connect_ms(200).with_rpc_ms(50).with_op_budget_ms(500)
    }

    #[tokio::test]
    async fn black_holed_peer_times_out_within_deadline() {
        let addr = spawn_black_hole().await;
        let client = PeerClient::with_policies(addr, tight_timeouts(), BreakerConfig::default());
        let started = std::time::Instant::now();
        let err = client.call(1, &Request::Status).await.unwrap_err();
        assert_eq!(err, ClusterError::Timeout("rpc"));
        assert!(started.elapsed() < Duration::from_secs(2));
        assert_eq!(client.stats().timeouts.get(), 1);
        // The half-sent connection was dropped, never pooled.
        assert_eq!(client.pooled(), 0);
    }

    #[tokio::test]
    async fn breaker_fast_fails_after_consecutive_timeouts() {
        let addr = spawn_black_hole().await;
        let cfg = BreakerConfig { failure_threshold: 3, cooldown: Duration::from_secs(30) };
        let client = PeerClient::with_policies(addr, tight_timeouts(), cfg);
        for id in 0..3 {
            assert_eq!(
                client.call(id, &Request::Status).await.unwrap_err(),
                ClusterError::Timeout("rpc")
            );
        }
        assert_eq!(client.breaker().opens.get(), 1);
        assert!(!client.healthy());
        // The fourth call never touches the network.
        let started = std::time::Instant::now();
        let err = client.call(99, &Request::Status).await.unwrap_err();
        assert_eq!(err, ClusterError::PeerUnhealthy);
        assert!(started.elapsed() < Duration::from_millis(40));
        assert_eq!(client.stats().timeouts.get(), 3);
        assert!(client.breaker().fast_fails.get() >= 1);
    }

    #[tokio::test]
    async fn call_retry_retries_with_backoff_then_gives_up() {
        // Unreachable port: every attempt fails fast with ECONNREFUSED.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = PeerClient::with_policies(addr, tight_timeouts(), BreakerConfig::default());
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
        };
        let deadline = Deadline::within(Duration::from_secs(5));
        let err = client.call_retry(7, &Request::Status, &policy, deadline).await.unwrap_err();
        assert!(matches!(err, ClusterError::Io(_)), "{err}");
        assert_eq!(client.stats().dials.get(), 3);
        assert_eq!(client.stats().retries.get(), 2);
    }

    #[tokio::test]
    async fn call_retry_succeeds_after_transient_failure() {
        // First exchange is cut mid-frame; the retry lands on a healthy
        // accept.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            // First connection: drop immediately (client sees EOF).
            let (sock, _) = listener.accept().await.unwrap();
            drop(sock);
            // Second connection: answer properly.
            let (mut sock, _) = listener.accept().await.unwrap();
            if let Ok(Some((id, _))) = read_frame(&mut sock).await {
                let _ = write_frame(&mut sock, id, &Response::Ok.encode()).await;
            }
        });
        let client = PeerClient::with_policies(addr, tight_timeouts(), BreakerConfig::default());
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
        };
        let deadline = Deadline::within(Duration::from_secs(5));
        let resp = client.call_retry(7, &Request::Status, &policy, deadline).await.unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(client.stats().retries.get(), 1);
    }

    #[tokio::test]
    async fn exhausted_deadline_fails_without_touching_network() {
        let addr = spawn_black_hole().await;
        let client = PeerClient::with_policies(addr, tight_timeouts(), BreakerConfig::default());
        let err = client.call_bounded(1, &Request::Status, Duration::ZERO).await.unwrap_err();
        assert_eq!(err, ClusterError::Timeout("op-budget"));
        assert_eq!(client.stats().dials.get(), 0);
    }

    #[test]
    fn robustness_totals_are_summed_across_peers() {
        let a = PeerClient::new("127.0.0.1:1".parse().unwrap());
        let b = PeerClient::new("127.0.0.1:2".parse().unwrap());
        a.stats().timeouts.add(2);
        b.stats().timeouts.add(3);
        b.stats().retries.inc();
        a.breaker().opens.inc();
        b.breaker().fast_fails.add(4);
        let mut s = MetricsSnapshot::new();
        push_peer_robustness(&mut s, [&a, &b]);
        assert_eq!(s.counter("pls_rpc_timeouts_total"), Some(5));
        assert_eq!(s.counter("pls_rpc_retries_total"), Some(1));
        assert_eq!(s.counter("pls_breaker_opens_total"), Some(1));
        assert_eq!(s.counter("pls_breaker_fast_fails_total"), Some(4));
    }
}
