//! Pooled per-peer RPC connections.
//!
//! Each [`PeerClient`] keeps a small pool of TCP connections to one peer.
//! A call takes a connection out of the pool (or dials a new one),
//! performs a single request/response exchange, and returns the
//! connection. Crucially, **no lock is held while a response is
//! awaited**: concurrent calls to the same peer simply use different
//! connections. A single mutually-exclusive connection would deadlock
//! the round-robin migration protocol, whose RPC graph contains cycles
//! (coordinator → holder → head server → holder).
//!
//! Ordering: messages whose relative order matters (a coordinator's
//! `Reset` before its `RrStore`s, a head server's `MigrateRep` before its
//! `RrRemoveAt`) are sent *sequentially from one task*, each awaited
//! before the next is issued — so they are ordered by causality, not by
//! connection.

use std::net::SocketAddr;
use std::sync::Mutex;

use tokio::net::TcpStream;

use crate::error::ClusterError;
use crate::proto::{Request, Response};
use crate::wire::{read_frame, write_frame};

/// Connections kept per peer; extras beyond this are closed on return.
const POOL_SIZE: usize = 4;

/// Performs one request/response exchange on an established stream.
pub async fn exchange(stream: &mut TcpStream, req: &Request) -> Result<Response, ClusterError> {
    write_frame(stream, &req.encode()).await?;
    let payload = read_frame(stream)
        .await?
        .ok_or_else(|| ClusterError::Io(std::io::ErrorKind::UnexpectedEof.into()))?;
    Response::decode(payload)
}

/// A lazily-connected pool of RPC connections to one peer address.
#[derive(Debug)]
pub struct PeerClient {
    addr: SocketAddr,
    pool: Mutex<Vec<TcpStream>>,
}

impl PeerClient {
    /// Creates a client for `addr`; no connection is made until the
    /// first call.
    pub fn new(addr: SocketAddr) -> Self {
        PeerClient { addr, pool: Mutex::new(Vec::new()) }
    }

    /// The peer's address.
    #[allow(dead_code)] // kept for diagnostics
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn take(&self) -> Option<TcpStream> {
        self.pool.lock().expect("pool lock").pop()
    }

    fn put_back(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("pool lock");
        if pool.len() < POOL_SIZE {
            pool.push(stream);
        }
    }

    /// Sends `req` and awaits the response on a pooled or fresh
    /// connection. A stale pooled connection is retried once with a
    /// fresh dial.
    ///
    /// # Errors
    ///
    /// I/O errors (peer unreachable / connection torn mid-exchange);
    /// decode errors; any [`Response::Error`] is surfaced as
    /// [`ClusterError::Remote`].
    pub async fn call(&self, req: &Request) -> Result<Response, ClusterError> {
        if let Some(mut stream) = self.take() {
            match exchange(&mut stream, req).await {
                Ok(resp) => {
                    self.put_back(stream);
                    return ok_or_remote(resp);
                }
                Err(ClusterError::Io(_)) => { /* stale: fall through to a fresh dial */ }
                Err(other) => return Err(other),
            }
        }
        let mut stream = TcpStream::connect(self.addr).await?;
        let resp = exchange(&mut stream, req).await?;
        self.put_back(stream);
        ok_or_remote(resp)
    }
}

fn ok_or_remote(resp: Response) -> Result<Response, ClusterError> {
    match resp {
        Response::Error(msg) => Err(ClusterError::Remote(msg)),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    use tokio::net::TcpListener;

    /// A toy server answering every request with `Ok`.
    async fn spawn_ok_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                tokio::spawn(async move {
                    while let Ok(Some(payload)) = read_frame(&mut sock).await {
                        let _ = Request::decode(payload);
                        if write_frame(&mut sock, &Response::Ok.encode()).await.is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[tokio::test]
    async fn call_roundtrip_and_reuse() {
        let addr = spawn_ok_server().await;
        let client = PeerClient::new(addr);
        for _ in 0..5 {
            let resp = client.call(&Request::Status).await.unwrap();
            assert_eq!(resp, Response::Ok);
        }
        // The pool holds the reused connection.
        assert_eq!(client.pool.lock().unwrap().len(), 1);
    }

    #[tokio::test]
    async fn concurrent_calls_use_separate_connections() {
        let addr = spawn_ok_server().await;
        let client = std::sync::Arc::new(PeerClient::new(addr));
        let mut tasks = Vec::new();
        for _ in 0..8 {
            let c = std::sync::Arc::clone(&client);
            tasks.push(tokio::spawn(async move { c.call(&Request::Status).await }));
        }
        for t in tasks {
            assert_eq!(t.await.unwrap().unwrap(), Response::Ok);
        }
        // Pool is capped.
        assert!(client.pool.lock().unwrap().len() <= POOL_SIZE);
    }

    #[tokio::test]
    async fn remote_error_is_surfaced() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let _ = read_frame(&mut sock).await;
            write_frame(&mut sock, &Response::Error("nope".into()).encode()).await.unwrap();
        });
        let client = PeerClient::new(addr);
        let err = client.call(&Request::Status).await.unwrap_err();
        assert_eq!(err, ClusterError::Remote("nope".into()));
    }

    #[tokio::test]
    async fn reconnects_after_peer_drops_connection() {
        // A server that closes each connection after one exchange.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                if read_frame(&mut sock).await.is_ok() {
                    let _ = write_frame(&mut sock, &Response::Ok.encode()).await;
                }
                // Drop the socket: next call must reconnect.
            }
        });
        let client = PeerClient::new(addr);
        assert_eq!(client.call(&Request::Status).await.unwrap(), Response::Ok);
        assert_eq!(client.call(&Request::Status).await.unwrap(), Response::Ok);
    }

    #[tokio::test]
    async fn unreachable_peer_errors() {
        // Bind-then-drop to get a (very likely) dead port.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = PeerClient::new(addr);
        assert!(matches!(client.call(&Request::Status).await, Err(ClusterError::Io(_))));
    }

    #[tokio::test]
    async fn garbage_response_is_decode_error() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let mut buf = [0u8; 64];
            let _ = sock.read(&mut buf).await;
            // A valid frame with an invalid opcode.
            sock.write_all(&[0, 0, 0, 1, 0x33]).await.unwrap();
        });
        let client = PeerClient::new(addr);
        assert!(matches!(client.call(&Request::Status).await, Err(ClusterError::Decode(_))));
    }
}
