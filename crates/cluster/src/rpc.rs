//! Pooled per-peer RPC connections.
//!
//! Each [`PeerClient`] keeps a small pool of TCP connections to one peer.
//! A call takes a connection out of the pool (or dials a new one),
//! performs a single request/response exchange, and returns the
//! connection. Crucially, **no lock is held while a response is
//! awaited**: concurrent calls to the same peer simply use different
//! connections. A single mutually-exclusive connection would deadlock
//! the round-robin migration protocol, whose RPC graph contains cycles
//! (coordinator → holder → head server → holder).
//!
//! Ordering: messages whose relative order matters (a coordinator's
//! `Reset` before its `RrStore`s, a head server's `MigrateRep` before its
//! `RrRemoveAt`) are sent *sequentially from one task*, each awaited
//! before the next is issued — so they are ordered by causality, not by
//! connection.

use std::net::SocketAddr;
use std::sync::Mutex;

use pls_telemetry::Counter;
use tokio::net::TcpStream;

use crate::error::ClusterError;
use crate::proto::{Request, Response};
use crate::wire::{read_frame, write_frame};

/// Connections kept per peer; extras beyond this are closed on return.
const POOL_SIZE: usize = 4;

/// Pool accounting for one [`PeerClient`]: how connections are
/// obtained (fresh dial vs. pool reuse) and how they leave the pool
/// (discarded after an error, evicted over capacity). All counters are
/// relaxed atomics — no lock beyond the pool's own.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Fresh TCP dials attempted.
    pub dials: Counter,
    /// Dials that failed to connect.
    pub dial_failures: Counter,
    /// Calls served by a pooled connection.
    pub reuses: Counter,
    /// Connections dropped after an exchange error (never re-pooled).
    pub discarded: Counter,
    /// Healthy connections closed because the pool was full.
    pub evicted: Counter,
}

/// Mixes a seed into a well-spread request-id starting point
/// (splitmix64 finalizer). Request-id generators start here and step by
/// the golden-ratio increment, giving each client/server a full-period
/// sequence of visually distinct ids.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Performs one request/response exchange on an established stream,
/// stamping the outgoing frame with `request_id`. The response frame
/// must echo the same id — a mismatch means the stream is answering
/// some other request (desynchronized) and is a protocol error.
pub async fn exchange(
    stream: &mut TcpStream,
    request_id: u64,
    req: &Request,
) -> Result<Response, ClusterError> {
    write_frame(stream, request_id, &req.encode()).await?;
    let (echoed_id, payload) = read_frame(stream)
        .await?
        .ok_or_else(|| ClusterError::Io(std::io::ErrorKind::UnexpectedEof.into()))?;
    if echoed_id != request_id {
        return Err(ClusterError::Decode("response id"));
    }
    Response::decode(payload)
}

/// A lazily-connected pool of RPC connections to one peer address.
#[derive(Debug)]
pub struct PeerClient {
    addr: SocketAddr,
    pool: Mutex<Vec<TcpStream>>,
    stats: PoolStats,
}

impl PeerClient {
    /// Creates a client for `addr`; no connection is made until the
    /// first call.
    pub fn new(addr: SocketAddr) -> Self {
        PeerClient { addr, pool: Mutex::new(Vec::new()), stats: PoolStats::default() }
    }

    /// The peer's address.
    #[allow(dead_code)] // kept for diagnostics
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This client's pool accounting.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Connections currently idle in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.lock().expect("pool lock").len()
    }

    fn take(&self) -> Option<TcpStream> {
        self.pool.lock().expect("pool lock").pop()
    }

    /// Returns a connection to the pool. Only ever called after a fully
    /// successful request/response exchange: a connection that saw any
    /// error is poisoned (its stream may be desynchronized mid-frame)
    /// and must be dropped, never re-pooled.
    fn put_back(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("pool lock");
        if pool.len() < POOL_SIZE {
            pool.push(stream);
        } else {
            self.stats.evicted.inc();
        }
    }

    /// Sends `req` stamped with `request_id` and awaits the response on
    /// a pooled or fresh connection. A stale pooled connection is
    /// retried once with a fresh dial; a connection that errors in any
    /// way is discarded, never returned to the pool.
    ///
    /// # Errors
    ///
    /// I/O errors (peer unreachable / connection torn mid-exchange);
    /// decode errors (including a response whose frame id does not echo
    /// `request_id`); any [`Response::Error`] is surfaced as
    /// [`ClusterError::Remote`].
    pub async fn call(&self, request_id: u64, req: &Request) -> Result<Response, ClusterError> {
        if let Some(mut stream) = self.take() {
            self.stats.reuses.inc();
            match exchange(&mut stream, request_id, req).await {
                Ok(resp) => {
                    self.put_back(stream);
                    return ok_or_remote(resp);
                }
                Err(ClusterError::Io(_)) => {
                    // Stale pooled connection: drop it and retry once on
                    // a fresh dial.
                    self.stats.discarded.inc();
                }
                Err(other) => {
                    // Protocol violation mid-exchange: the stream may be
                    // desynchronized — poison it (drop, don't re-pool).
                    self.stats.discarded.inc();
                    return Err(other);
                }
            }
        }
        self.stats.dials.inc();
        pls_telemetry::event!(pls_telemetry::Level::Trace, "peer_dial", addr = self.addr);
        let mut stream = match TcpStream::connect(self.addr).await {
            Ok(s) => s,
            Err(e) => {
                self.stats.dial_failures.inc();
                return Err(e.into());
            }
        };
        match exchange(&mut stream, request_id, req).await {
            Ok(resp) => {
                self.put_back(stream);
                ok_or_remote(resp)
            }
            Err(err) => {
                self.stats.discarded.inc();
                Err(err)
            }
        }
    }
}

fn ok_or_remote(resp: Response) -> Result<Response, ClusterError> {
    match resp {
        Response::Error(msg) => Err(ClusterError::Remote(msg)),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    use tokio::net::TcpListener;

    /// A toy server answering every request with `Ok`, echoing ids.
    async fn spawn_ok_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                tokio::spawn(async move {
                    while let Ok(Some((id, payload))) = read_frame(&mut sock).await {
                        let _ = Request::decode(payload);
                        if write_frame(&mut sock, id, &Response::Ok.encode()).await.is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[tokio::test]
    async fn call_roundtrip_and_reuse() {
        let addr = spawn_ok_server().await;
        let client = PeerClient::new(addr);
        for id in 0..5 {
            let resp = client.call(id, &Request::Status).await.unwrap();
            assert_eq!(resp, Response::Ok);
        }
        // The pool holds the reused connection.
        assert_eq!(client.pooled(), 1);
        // One dial, four pool reuses, nothing discarded.
        assert_eq!(client.stats().dials.get(), 1);
        assert_eq!(client.stats().reuses.get(), 4);
        assert_eq!(client.stats().discarded.get(), 0);
        assert_eq!(client.stats().dial_failures.get(), 0);
    }

    #[tokio::test]
    async fn concurrent_calls_use_separate_connections() {
        let addr = spawn_ok_server().await;
        let client = std::sync::Arc::new(PeerClient::new(addr));
        let mut tasks = Vec::new();
        for id in 0..8 {
            let c = std::sync::Arc::clone(&client);
            tasks.push(tokio::spawn(async move { c.call(id, &Request::Status).await }));
        }
        for t in tasks {
            assert_eq!(t.await.unwrap().unwrap(), Response::Ok);
        }
        // Pool is capped.
        assert!(client.pool.lock().unwrap().len() <= POOL_SIZE);
    }

    #[tokio::test]
    async fn remote_error_is_surfaced() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let (id, _) = read_frame(&mut sock).await.unwrap().unwrap();
            write_frame(&mut sock, id, &Response::Error("nope".into()).encode()).await.unwrap();
        });
        let client = PeerClient::new(addr);
        let err = client.call(1, &Request::Status).await.unwrap_err();
        assert_eq!(err, ClusterError::Remote("nope".into()));
    }

    #[tokio::test]
    async fn reconnects_after_peer_drops_connection() {
        // A server that closes each connection after one exchange.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                if let Ok(Some((id, _))) = read_frame(&mut sock).await {
                    let _ = write_frame(&mut sock, id, &Response::Ok.encode()).await;
                }
                // Drop the socket: next call must reconnect.
            }
        });
        let client = PeerClient::new(addr);
        assert_eq!(client.call(1, &Request::Status).await.unwrap(), Response::Ok);
        assert_eq!(client.call(2, &Request::Status).await.unwrap(), Response::Ok);
    }

    #[tokio::test]
    async fn unreachable_peer_errors() {
        // Bind-then-drop to get a (very likely) dead port.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = PeerClient::new(addr);
        assert!(matches!(client.call(1, &Request::Status).await, Err(ClusterError::Io(_))));
    }

    #[tokio::test]
    async fn garbage_response_is_decode_error() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let mut buf = [0u8; 64];
            let _ = sock.read(&mut buf).await;
            // A valid frame echoing id 7, with an invalid opcode.
            sock.write_all(&[0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 7, 0x33]).await.unwrap();
        });
        let client = PeerClient::new(addr);
        assert!(matches!(client.call(7, &Request::Status).await, Err(ClusterError::Decode(_))));
        // The desynchronized connection is poisoned: dropped, not
        // returned to the pool.
        assert_eq!(client.pooled(), 0);
        assert_eq!(client.stats().discarded.get(), 1);
    }

    #[tokio::test]
    async fn mismatched_response_id_is_rejected_and_poisons_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await.unwrap();
            let _ = read_frame(&mut sock).await;
            // Answer with a valid `Ok` frame stamped with the wrong id.
            write_frame(&mut sock, 999, &Response::Ok.encode()).await.unwrap();
        });
        let client = PeerClient::new(addr);
        let err = client.call(5, &Request::Status).await.unwrap_err();
        assert_eq!(err, ClusterError::Decode("response id"));
        assert_eq!(client.pooled(), 0);
        assert_eq!(client.stats().discarded.get(), 1);
    }

    #[tokio::test]
    async fn stale_pooled_connection_is_discarded_and_redialed() {
        // A server that closes each connection after one exchange: the
        // second call finds a dead pooled connection, discards it, and
        // succeeds on a fresh dial.
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            loop {
                let (mut sock, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => return,
                };
                if let Ok(Some((id, _))) = read_frame(&mut sock).await {
                    let _ = write_frame(&mut sock, id, &Response::Ok.encode()).await;
                }
            }
        });
        let client = PeerClient::new(addr);
        assert_eq!(client.call(1, &Request::Status).await.unwrap(), Response::Ok);
        assert_eq!(client.call(2, &Request::Status).await.unwrap(), Response::Ok);
        assert_eq!(client.stats().dials.get(), 2);
        assert_eq!(client.stats().reuses.get(), 1);
        assert_eq!(client.stats().discarded.get(), 1);
    }

    #[tokio::test]
    async fn failed_dial_is_counted() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = PeerClient::new(addr);
        assert!(client.call(1, &Request::Status).await.is_err());
        assert_eq!(client.stats().dials.get(), 1);
        assert_eq!(client.stats().dial_failures.get(), 1);
        assert_eq!(client.pooled(), 0);
    }

    #[tokio::test]
    async fn pool_eviction_over_capacity_is_counted() {
        let addr = spawn_ok_server().await;
        let client = std::sync::Arc::new(PeerClient::new(addr));
        // Far more concurrent calls than POOL_SIZE: every call dials (the
        // pool starts empty and all calls are in flight together), and
        // only POOL_SIZE connections fit back.
        let mut tasks = Vec::new();
        let barrier = std::sync::Arc::new(tokio::sync::Barrier::new(POOL_SIZE * 3));
        for id in 0..(POOL_SIZE * 3) as u64 {
            let c = std::sync::Arc::clone(&client);
            let b = std::sync::Arc::clone(&barrier);
            tasks.push(tokio::spawn(async move {
                b.wait().await;
                c.call(id, &Request::Status).await
            }));
        }
        for t in tasks {
            assert_eq!(t.await.unwrap().unwrap(), Response::Ok);
        }
        assert!(client.pooled() <= POOL_SIZE);
        let s = client.stats();
        assert_eq!(s.dials.get() + s.reuses.get(), (POOL_SIZE * 3) as u64);
        // Every healthy connection either sits in the pool or was
        // evicted over capacity.
        assert_eq!(s.dials.get(), client.pooled() as u64 + s.evicted.get());
    }
}
