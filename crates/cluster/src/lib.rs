//! Networked deployment of the partial lookup service.
//!
//! The paper envisions an online directory (Napster-style song lookup,
//! DNS-style name resolution). This crate turns the protocol engines of
//! `pls-core` into exactly that: `n` TCP servers plus a client library,
//! managing **many keys**, each under its own placement strategy.
//!
//! * Every server runs one [`pls_core::engine::NodeEngine`] per key — the
//!   same state machine the simulator executes, so the deployed protocol
//!   is the validated one.
//! * The wire format is a hand-rolled length-prefixed binary encoding
//!   ([`wire`], [`proto`]); no serialization framework needed.
//! * Server-to-server traffic (store/remove/migrate fan-out) is carried
//!   as [`proto::Request::Internal`] RPCs with acknowledged, in-order
//!   delivery per sender — the ordering the engines rely on.
//! * The client ([`Client`]) implements the §3 lookup procedures over
//!   sockets: single-probe for full replication and Fixed-x, shuffled
//!   probing with merging for RandomServer-x and Hash-y, the stride walk
//!   for Round-Robin-y; failed servers are skipped exactly as in the
//!   paper.
//! * Every server and client is instrumented with lock-free metrics
//!   ([`metrics`], built on [`pls_telemetry`]): per-request-variant
//!   counters, per-strategy probe counts, wire byte totals, and the
//!   probes-per-lookup histogram that measures the paper's §4.2 client
//!   lookup cost on the live deployment. On top sit the *live quality*
//!   series — online unfairness and coverage gauges, per-entry
//!   retrieval counters, and a Space-Saving hot-key sketch. Scrape one
//!   server with [`proto::Request::Metrics`], over HTTP via the
//!   [`http`] exporter (`pls-server --metrics-addr`), or the whole
//!   cluster with [`Client::cluster_metrics`] / `pls-client stats`.
//! * Every network interaction is **time-bounded** ([`retry`]): dials
//!   and RPCs carry deadlines, operations carry a total budget, flaky
//!   peers are retried with jittered backoff, and a per-peer circuit
//!   breaker demotes servers that keep failing. The merging lookups can
//!   optionally *hedge* slow probes. A fault-injecting [`chaos`] proxy
//!   proves all of it under black-holes, delays, garbage frames, and
//!   half-closes (`tests/chaos.rs`).
//! * Every request frame carries a client-generated **request id**
//!   ([`wire`]); servers echo it, propagate it through internal
//!   fan-out, and stamp it (`req=...`) on their tracing events, so one
//!   lookup can be correlated across every machine it touched.
//!
//! # Example
//!
//! ```no_run
//! use pls_cluster::{Client, ClientConfig, Server, ServerConfig};
//! use pls_core::StrategySpec;
//!
//! # async fn demo() -> Result<(), Box<dyn std::error::Error>> {
//! // Normally each server runs in its own process (see the pls-server
//! // binary); here, in one process for brevity.
//! let addrs: Vec<std::net::SocketAddr> =
//!     (0..3).map(|i| format!("127.0.0.1:{}", 7400 + i).parse().unwrap()).collect();
//! for i in 0..3 {
//!     let cfg = ServerConfig::new(i, addrs.clone(), StrategySpec::hash(2), 42);
//!     let (server, _addr) = Server::bind(cfg).await?;
//!     tokio::spawn(server.run());
//! }
//! let mut client = Client::connect(ClientConfig::new(addrs, StrategySpec::hash(2), 1));
//! client.place(b"song/stairway", vec![b"peer1:6699".to_vec(), b"peer2:6699".to_vec()]).await?;
//! let hits = client.partial_lookup(b"song/stairway", 1).await?;
//! assert!(!hits.is_empty());
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod client;
mod error;
pub mod http;
pub mod metrics;
pub mod proto;
pub mod retry;
mod rpc;
mod server;
pub mod storage;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosPeer};
pub use client::{Client, ClientConfig};
pub use error::ClusterError;
pub use metrics::{ClientMetrics, ReqOp, ServerMetrics};
pub use retry::{Breaker, BreakerConfig, Deadline, RetryPolicy, Timeouts};
pub use rpc::PoolStats;
pub use server::{Server, ServerConfig};

// Re-exported so downstream users of the cluster get the snapshot and
// tracing types without naming the telemetry crate themselves.
pub use pls_telemetry as telemetry;

/// Parses a strategy spec from its CLI form: `full`, `fixed:20`,
/// `random:20`, `round:2`, or `hash:2`.
///
/// # Errors
///
/// Returns a human-readable message for unknown names or missing/invalid
/// parameters.
pub fn parse_spec(s: &str) -> Result<pls_core::StrategySpec, String> {
    use pls_core::StrategySpec;
    let (name, param) = match s.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (s, None),
    };
    let parse_param = || -> Result<usize, String> {
        let raw = param
            .ok_or_else(|| format!("strategy `{name}` needs a parameter, e.g. `{name}:20`"))?;
        raw.parse::<usize>().map_err(|_| format!("invalid parameter `{raw}` for strategy `{name}`"))
    };
    match name {
        "full" | "full-replication" => Ok(StrategySpec::full_replication()),
        "fixed" => Ok(StrategySpec::fixed(parse_param()?)),
        "random" | "random-server" => Ok(StrategySpec::random_server(parse_param()?)),
        "round" | "round-robin" => Ok(StrategySpec::round_robin(parse_param()?)),
        "hash" => Ok(StrategySpec::hash(parse_param()?)),
        other => Err(format!(
            "unknown strategy `{other}` (expected full, fixed:X, random:X, round:Y, hash:Y)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pls_core::StrategySpec;

    #[test]
    fn parse_spec_accepts_all_forms() {
        assert_eq!(parse_spec("full"), Ok(StrategySpec::full_replication()));
        assert_eq!(parse_spec("fixed:20"), Ok(StrategySpec::fixed(20)));
        assert_eq!(parse_spec("random:20"), Ok(StrategySpec::random_server(20)));
        assert_eq!(parse_spec("random-server:5"), Ok(StrategySpec::random_server(5)));
        assert_eq!(parse_spec("round:2"), Ok(StrategySpec::round_robin(2)));
        assert_eq!(parse_spec("hash:3"), Ok(StrategySpec::hash(3)));
    }

    #[test]
    fn parse_spec_rejects_garbage() {
        assert!(parse_spec("chord").is_err());
        assert!(parse_spec("fixed").is_err());
        assert!(parse_spec("fixed:abc").is_err());
    }
}
