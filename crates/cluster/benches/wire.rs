//! Criterion benches of the wire codec: the per-message cost every
//! internal RPC pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pls_cluster::proto::{Request, Response};
use pls_core::Message;
use std::hint::black_box;

fn bench_request_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("request_encode");
    let small = Request::Add { key: b"song/stairway".to_vec(), entry: b"peer1:6699".to_vec() };
    let internal = Request::Internal {
        from: 3,
        key: b"song/stairway".to_vec(),
        spec: None,
        msg: Message::RrStore { v: b"peer1:6699".to_vec(), pos: 42 },
    };
    let entries: Vec<Vec<u8>> = (0..100).map(|i| format!("peer{i}:6699").into_bytes()).collect();
    let place = Request::Place { key: b"song/stairway".to_vec(), entries, spec: None };
    for (name, req) in [("add", &small), ("internal_rr_store", &internal), ("place_100", &place)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), req, |b, req| {
            b.iter(|| black_box(req.encode()))
        });
    }
    group.finish();
}

fn bench_request_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("request_decode");
    let entries: Vec<Vec<u8>> = (0..100).map(|i| format!("peer{i}:6699").into_bytes()).collect();
    let reqs = [
        ("add", Request::Add { key: b"k".to_vec(), entry: b"peer1:6699".to_vec() }),
        ("place_100", Request::Place { key: b"k".to_vec(), entries, spec: None }),
    ];
    for (name, req) in reqs {
        let payload = req.encode();
        group.bench_with_input(BenchmarkId::from_parameter(name), &payload, |b, payload| {
            b.iter(|| black_box(Request::decode(payload.clone()).expect("valid")))
        });
    }
    group.finish();
}

fn bench_response_roundtrip(c: &mut Criterion) {
    let entries: Vec<Vec<u8>> = (0..50).map(|i| format!("peer{i}:6699").into_bytes()).collect();
    let resp = Response::Entries(entries);
    c.bench_function("response_entries_50_roundtrip", |b| {
        b.iter(|| {
            let payload = resp.encode();
            black_box(Response::decode(payload).expect("valid"))
        })
    });
}

criterion_group!(benches, bench_request_encode, bench_request_decode, bench_response_roundtrip);
criterion_main!(benches);
