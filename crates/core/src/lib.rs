//! Core implementation of **partial lookup services** (Sun &
//! Garcia-Molina, ICDCS 2003).
//!
//! A lookup service maps a key to a set of entries. A *partial* lookup
//! service exploits the fact that clients usually need only `t` of the `h`
//! entries: `partial_lookup(t)` may return any subset of size ≥ `t`, which
//! lets servers store far less than the full entry set.
//!
//! This crate implements the paper's five per-key placement strategies as
//! message-passing protocols over a cluster of `n` servers
//! ([`StrategySpec`]):
//!
//! * **Full replication** — every entry on every server.
//! * **Fixed-x** — the same fixed `x`-subset on every server, with the
//!   selective-broadcast update rule and cushion sizing of §5.2.
//! * **RandomServer-x** — an independent uniformly-random `x`-subset per
//!   server, maintained under adds by reservoir sampling (Vitter).
//! * **Round-Robin-y** — entry `i` on servers `i .. i+y-1 (mod n)`, with the
//!   head/tail coordinator counters and the hole-plugging migration
//!   protocol of Fig. 11.
//! * **Hash-y** — entry `v` on servers `f_1(v) .. f_y(v)` for a family of
//!   `y` hash functions.
//!
//! The entry point is [`Cluster`]: it owns the simulated network
//! (`pls-net`), the per-server state, and a deterministic RNG, and exposes
//! the service interface of §2 — [`Cluster::place`], [`Cluster::add`],
//! [`Cluster::delete`], [`Cluster::partial_lookup`] — plus failure
//! injection and a [`Placement`] snapshot for the metrics crate.
//!
//! # Example
//!
//! ```
//! use pls_core::{Cluster, StrategySpec};
//!
//! // 100 entries on 10 servers, each entry kept on 2 servers.
//! let mut cluster = Cluster::new(10, StrategySpec::round_robin(2), 42)?;
//! cluster.place((0..100u64).collect());
//! let result = cluster.partial_lookup(30)?;
//! assert!(result.entries().len() >= 30);
//! assert_eq!(result.servers_contacted(), 2); // ceil(30 / 20)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Beyond the paper's core, the [`advisor`] module encodes the paper's
//! rules of thumb (Table 2) for choosing a strategy, and [`ext`] implements
//! the §7 variations (client preferences, limited reachability).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod collections;
mod config;
mod entry;
mod error;
mod hashing;
mod lookup;
mod messages;
mod node;
mod placement;

pub mod advisor;
pub mod baseline;
pub mod directory;
pub mod engine;
pub mod ext;
pub mod membership;

pub use cluster::Cluster;
pub use collections::IndexedSet;
pub use config::{ConfigError, StrategyKind, StrategySpec};
pub use entry::Entry;
pub use error::ServiceError;
pub use hashing::HashFamily;
pub use lookup::LookupResult;
pub use membership::{GroupRouter, Member, Membership, RoutingTable};
pub use messages::Message;
pub use node::Tombstone;
pub use placement::Placement;

// Re-export the substrate types users need to drive a cluster.
pub use pls_net::{DetRng, FailureSet, MessageCounter, MsgClass, ServerId};
