//! Elastic membership: versioned server lists and key → placement-group
//! routing (ROADMAP item 3).
//!
//! The paper fixes `n` servers that all participate in every key's
//! placement. To scale past one placement domain, this module maps each
//! key onto a small *placement group* of `g` servers drawn from a live,
//! epoch-versioned [`Membership`]; inside the group the paper's five
//! strategies run unchanged with `n = g`.
//!
//! Routing uses **multi-probe consistent hashing** (Appleton & O'Reilly
//! 2015): every member contributes exactly one point to the hash ring (no
//! virtual-node table), and each key is hashed `k` times — the key's
//! *primary* owner is the probe whose clockwise successor is nearest,
//! which flattens the load imbalance that single-probe rings suffer. The
//! placement group is the primary plus the next `g − 1` distinct members
//! in ring order, so a membership change moves only the keys whose ring
//! neighborhood actually changed.
//!
//! Two invariants matter to callers:
//!
//! * **Determinism** — `group(membership, key)` is a pure function of the
//!   membership, the key, and the router parameters. Every node that
//!   agrees on the epoch agrees on every group, including its *order*
//!   (index 0 is the group coordinator for Round-Robin).
//! * **Small-cluster compatibility** — while `|members| ≤ g` the group is
//!   all members in ascending id order, which is exactly the paper's
//!   fixed-`n` world: a cluster below the group size behaves identically
//!   to the pre-membership code.
//!
//! [`RoutingTable`] keeps the current epoch plus the previous one as a
//! one-epoch *grace overlap*: in-flight operations addressed under the
//! old epoch can still be translated while migration drains.

/// splitmix64 finalizer: fast, well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the key bytes: seed-free, stable across processes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One live server: a stable numeric id plus its dial address.
///
/// Bootstrap members get ids `0..n-1`; every later join gets
/// `max_live + 1`, and a server that rejoins under its old address keeps
/// its old id. (An id is reallocated only after the *highest* live id
/// leaves — acceptable because a zombie holding that id is also absent
/// from the membership every live node routes by.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Stable server id (also the wire `from` of internal messages).
    pub id: u64,
    /// Dial address, as a string so this crate stays transport-agnostic.
    pub addr: String,
}

/// An epoch-versioned server list. Higher epoch wins, everywhere: a
/// membership is installed on a node only if its epoch is strictly
/// greater than the node's current one, so gossip converges without a
/// coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    epoch: u64,
    /// Always sorted by id, no duplicates.
    members: Vec<Member>,
}

impl Membership {
    /// The empty membership at epoch 0 — the "I know nothing" value a
    /// fetch request carries so any real view replaces it.
    pub fn empty() -> Self {
        Membership { epoch: 0, members: Vec::new() }
    }

    /// The bootstrap membership: epoch 1, ids `0..addrs.len()` in
    /// address-list order — exactly the static `--peers` world.
    pub fn bootstrap<S: Into<String>>(addrs: impl IntoIterator<Item = S>) -> Self {
        let members = addrs
            .into_iter()
            .enumerate()
            .map(|(i, a)| Member { id: i as u64, addr: a.into() })
            .collect();
        Membership { epoch: 1, members }
    }

    /// Rebuilds a membership from wire parts; sorts by id and drops
    /// duplicate ids (first occurrence wins) so a malformed frame can't
    /// smuggle an ambiguous view in.
    pub fn from_parts(epoch: u64, parts: Vec<(u64, String)>) -> Self {
        let mut members: Vec<Member> =
            parts.into_iter().map(|(id, addr)| Member { id, addr }).collect();
        members.sort_by_key(|m| m.id);
        members.dedup_by_key(|m| m.id);
        Membership { epoch, members }
    }

    /// The epoch of this view.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The members, sorted by id.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members are known (the epoch-0 fetch value).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// All member ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.members.iter().map(|m| m.id).collect()
    }

    /// Whether `id` is a live member.
    pub fn contains(&self, id: u64) -> bool {
        self.members.binary_search_by_key(&id, |m| m.id).is_ok()
    }

    /// The dial address of member `id`, if live.
    pub fn addr_of(&self, id: u64) -> Option<&str> {
        self.members.binary_search_by_key(&id, |m| m.id).ok().map(|i| self.members[i].addr.as_str())
    }

    /// The id of the member at `addr`, if any.
    pub fn id_of_addr(&self, addr: &str) -> Option<u64> {
        self.members.iter().find(|m| m.addr == addr).map(|m| m.id)
    }

    /// A new view with `addr` joined: epoch + 1, id = max + 1. Joining an
    /// address that is already a member is idempotent apart from the
    /// epoch bump (the old id is kept), so a rejoining server keeps its
    /// identity. Returns the new view and the joiner's id.
    pub fn with_join(&self, addr: &str) -> (Membership, u64) {
        if let Some(id) = self.id_of_addr(addr) {
            let mut next = self.clone();
            next.epoch += 1;
            return (next, id);
        }
        let id = self.members.iter().map(|m| m.id + 1).max().unwrap_or(0);
        let mut next = self.clone();
        next.epoch += 1;
        next.members.push(Member { id, addr: to_owned_addr(addr) });
        (next, id)
    }

    /// A new view with member `id` removed (a graceful leave): epoch + 1.
    /// Returns `None` if `id` is not a member or is the last one — a
    /// cluster cannot drain itself to zero.
    pub fn with_leave(&self, id: u64) -> Option<Membership> {
        if !self.contains(id) || self.members.len() <= 1 {
            return None;
        }
        let mut next = self.clone();
        next.epoch += 1;
        next.members.retain(|m| m.id != id);
        Some(next)
    }
}

fn to_owned_addr(addr: &str) -> String {
    addr.to_string()
}

/// Default placement-group size: five servers per key, enough for every
/// strategy the paper studies (Fixed-x and RandomServer-x cap `x` at the
/// group size; Round-Robin-y and Hash-y cap `y` the same way).
pub const DEFAULT_GROUP_SIZE: usize = 5;

/// Default probe count for multi-probe hashing. Appleton & O'Reilly show
/// k = 21 probes bring the peak-to-average load of a 1-point-per-node
/// ring down to ≈ 1.1× — the sweet spot they recommend.
pub const DEFAULT_PROBES: usize = 21;

/// Multi-probe consistent-hash router: key → ordered placement group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRouter {
    group_size: usize,
    probes: usize,
    seed: u64,
}

impl GroupRouter {
    /// A router producing groups of `group_size`, derived from `seed`.
    /// Every node of a cluster must use the same `(group_size, probes,
    /// seed)` triple or they will disagree on placement.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn new(group_size: usize, seed: u64) -> Self {
        assert!(group_size > 0, "placement groups need at least one server");
        GroupRouter { group_size, probes: DEFAULT_PROBES, seed }
    }

    /// Overrides the probe count (mostly for tests; more probes, flatter
    /// load, linearly more hashing).
    ///
    /// # Panics
    ///
    /// Panics if `probes` is zero.
    pub fn with_probes(mut self, probes: usize) -> Self {
        assert!(probes > 0, "need at least one probe");
        self.probes = probes;
        self
    }

    /// The configured group size `g`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The ring point of member `id` — one point per member, no virtual
    /// nodes, exactly the storage bound the multi-probe paper targets.
    fn point(&self, id: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(id.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// The ordered placement group for `key` under `membership`: the
    /// multi-probe primary first, then the next `g − 1` distinct members
    /// clockwise around the ring. While `|members| ≤ g` this is all
    /// members in ascending id order (small-cluster compatibility).
    pub fn group(&self, membership: &Membership, key: &[u8]) -> Vec<u64> {
        let ids = membership.ids();
        if ids.len() <= self.group_size {
            return ids;
        }
        // Ring order: members sorted by point (ties by id, which cannot
        // collide). Built per call — membership changes are rare and the
        // member count is what multi-probe keeps small state for.
        let mut ring: Vec<(u64, u64)> = ids.iter().map(|&id| (self.point(id), id)).collect();
        ring.sort_unstable();
        // Multi-probe: hash the key `probes` times; the owner is the
        // probe whose clockwise successor is nearest.
        let kh = fnv1a64(key);
        let mut best: Option<(u64, usize)> = None; // (distance, ring index)
        let mut pseed = splitmix64(self.seed ^ 0xa076_1d64_78bd_642f);
        for _ in 0..self.probes {
            let h = splitmix64(pseed ^ kh);
            pseed = splitmix64(pseed);
            // Successor: first ring point ≥ h, wrapping to ring[0].
            let idx = match ring.binary_search(&(h, 0)) {
                Ok(i) => i,
                Err(i) => {
                    if i == ring.len() {
                        0
                    } else {
                        i
                    }
                }
            };
            let dist = ring[idx].0.wrapping_sub(h);
            if best.map_or(true, |(d, _)| dist < d) {
                best = Some((dist, idx));
            }
        }
        let start = best.map(|(_, i)| i).unwrap_or(0);
        (0..self.group_size).map(|off| ring[(start + off) % ring.len()].1).collect()
    }
}

/// The position of `id` inside an ordered group, i.e. the group-local
/// server index the placement engines run under.
pub fn group_index(group: &[u64], id: u64) -> Option<usize> {
    group.iter().position(|&g| g == id)
}

/// The live routing state of one node: the current membership plus the
/// previous one as a one-epoch grace overlap, and the router that maps
/// keys onto them.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    router: GroupRouter,
    current: Membership,
    previous: Option<Membership>,
}

impl RoutingTable {
    /// A table starting at `membership` with no grace predecessor.
    pub fn new(router: GroupRouter, membership: Membership) -> Self {
        RoutingTable { router, current: membership, previous: None }
    }

    /// Installs a newer view. Returns `true` (and shifts the old current
    /// into the grace slot) only when `next.epoch` is strictly greater;
    /// stale or duplicate gossip is a no-op.
    pub fn install(&mut self, next: Membership) -> bool {
        if next.epoch <= self.current.epoch {
            return false;
        }
        let old = std::mem::replace(&mut self.current, next);
        // Epoch 0 is the "know nothing" bootstrap value, not a real view
        // worth a grace window.
        self.previous = (old.epoch > 0 && !old.is_empty()).then_some(old);
        true
    }

    /// The current view.
    pub fn current(&self) -> &Membership {
        &self.current
    }

    /// The previous view, if still inside the grace overlap.
    pub fn previous(&self) -> Option<&Membership> {
        self.previous.as_ref()
    }

    /// The router in use.
    pub fn router(&self) -> &GroupRouter {
        &self.router
    }

    /// The ordered placement group for `key` under the current epoch.
    pub fn group(&self, key: &[u8]) -> Vec<u64> {
        self.router.group(&self.current, key)
    }

    /// The ordered placement group for `key` under the previous epoch,
    /// if a grace view exists and it differs from the current group.
    pub fn prev_group(&self, key: &[u8]) -> Option<Vec<u64>> {
        let prev = self.previous.as_ref()?;
        let g = self.router.group(prev, key);
        (g != self.group(key)).then_some(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7000")).collect()
    }

    #[test]
    fn bootstrap_assigns_dense_ids_at_epoch_one() {
        let m = Membership::bootstrap(addrs(3));
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.ids(), vec![0, 1, 2]);
        assert_eq!(m.addr_of(2), Some("10.0.0.2:7000"));
        assert!(m.contains(1));
        assert!(!m.contains(3));
    }

    #[test]
    fn join_bumps_epoch_and_allocates_fresh_id() {
        let m = Membership::bootstrap(addrs(3));
        let (m2, id) = m.with_join("10.0.0.9:7000");
        assert_eq!(id, 3);
        assert_eq!(m2.epoch(), 2);
        assert_eq!(m2.ids(), vec![0, 1, 2, 3]);
        // Ids are never reused for new addresses, even after a leave.
        let m3 = m2.with_leave(3).unwrap();
        let (m4, id2) = m3.with_join("10.0.0.10:7000");
        assert_eq!(id2, 3, "leave of the max id frees it for reallocation");
        assert_eq!(m4.epoch(), 4);
    }

    #[test]
    fn rejoin_of_known_address_keeps_its_id() {
        let m = Membership::bootstrap(addrs(3));
        let (m2, id) = m.with_join("10.0.0.1:7000");
        assert_eq!(id, 1);
        assert_eq!(m2.epoch(), 2);
        assert_eq!(m2.len(), 3);
    }

    #[test]
    fn leave_rejects_unknown_and_last_member() {
        let m = Membership::bootstrap(addrs(2));
        assert!(m.with_leave(7).is_none());
        let m2 = m.with_leave(0).unwrap();
        assert_eq!(m2.ids(), vec![1]);
        assert!(m2.with_leave(1).is_none(), "cannot drain the last server");
    }

    #[test]
    fn from_parts_sorts_and_dedups() {
        let m = Membership::from_parts(
            5,
            vec![(2, "b".into()), (0, "a".into()), (2, "dup".into()), (1, "c".into())],
        );
        assert_eq!(m.ids(), vec![0, 1, 2]);
        assert_eq!(m.addr_of(2), Some("b"));
    }

    #[test]
    fn small_cluster_group_is_all_members_ascending() {
        // The compatibility guarantee: at or below the group size the
        // group is the full id list, so a 3-server cluster routes
        // exactly like the pre-membership code.
        let router = GroupRouter::new(5, 42);
        let m = Membership::bootstrap(addrs(3));
        for key in [b"a".as_ref(), b"song.mp3", b"zzz"] {
            assert_eq!(router.group(&m, key), vec![0, 1, 2]);
        }
    }

    #[test]
    fn groups_are_deterministic_distinct_and_sized() {
        let router = GroupRouter::new(5, 42);
        let m = Membership::bootstrap(addrs(20));
        for i in 0..200u32 {
            let key = format!("key-{i}").into_bytes();
            let g = router.group(&m, &key);
            assert_eq!(g, router.group(&m, &key), "determinism");
            assert_eq!(g.len(), 5);
            let mut sorted = g.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "distinct members");
            for id in g {
                assert!(m.contains(id));
            }
        }
    }

    #[test]
    fn all_nodes_agree_on_group_order() {
        // Group order is part of the contract (index 0 coordinates RR);
        // two routers with the same parameters must agree on it.
        let a = GroupRouter::new(3, 7).with_probes(8);
        let b = GroupRouter::new(3, 7).with_probes(8);
        let m = Membership::bootstrap(addrs(10));
        for i in 0..100u32 {
            let key = format!("k{i}").into_bytes();
            assert_eq!(a.group(&m, &key), b.group(&m, &key));
        }
    }

    #[test]
    fn primary_load_is_flat_under_multi_probe() {
        // The whole point of multi-probe: one point per node and still a
        // low peak-to-average primary load.
        let router = GroupRouter::new(1, 9);
        let m = Membership::bootstrap(addrs(16));
        let mut counts = vec![0usize; 16];
        let keys = 16_000u32;
        for i in 0..keys {
            let key = format!("load-{i}").into_bytes();
            counts[router.group(&m, &key)[0] as usize] += 1;
        }
        let avg = keys as f64 / 16.0;
        let peak = *counts.iter().max().unwrap() as f64;
        let trough = *counts.iter().min().unwrap() as f64;
        assert!(peak / avg < 1.35, "peak-to-average {:.2} too high: {counts:?}", peak / avg);
        assert!(trough > 0.0, "a server got no keys at all: {counts:?}");
    }

    #[test]
    fn membership_change_moves_a_bounded_fraction_of_placements() {
        // Consistent hashing's reason to exist: a join moves roughly
        // g/(n+1) of the (key, server) placements, not all of them.
        let router = GroupRouter::new(5, 11);
        let m = Membership::bootstrap(addrs(20));
        let (m2, _) = m.with_join("10.0.9.9:7000");
        let keys: Vec<Vec<u8>> = (0..2000u32).map(|i| format!("mv-{i}").into_bytes()).collect();
        let mut moved_pairs = 0usize;
        let mut total_pairs = 0usize;
        for key in &keys {
            let before: std::collections::HashSet<u64> =
                router.group(&m, key).into_iter().collect();
            let after: std::collections::HashSet<u64> =
                router.group(&m2, key).into_iter().collect();
            total_pairs += before.len();
            moved_pairs += before.difference(&after).count();
        }
        let frac = moved_pairs as f64 / total_pairs as f64;
        assert!(frac < 0.35, "join moved {:.0}% of placements", frac * 100.0);
        assert!(moved_pairs > 0, "a join that moves nothing rebalances nothing");
    }

    #[test]
    fn group_index_finds_local_position() {
        assert_eq!(group_index(&[4, 2, 9], 2), Some(1));
        assert_eq!(group_index(&[4, 2, 9], 7), None);
    }

    #[test]
    fn routing_table_installs_only_newer_epochs() {
        let router = GroupRouter::new(5, 1);
        let m1 = Membership::bootstrap(addrs(3));
        let mut table = RoutingTable::new(router, m1.clone());
        assert!(!table.install(m1.clone()), "same epoch rejected");
        assert!(!table.install(Membership::empty()), "epoch 0 rejected");
        let (m2, _) = m1.with_join("10.0.0.9:7000");
        assert!(table.install(m2.clone()));
        assert_eq!(table.current().epoch(), 2);
        assert_eq!(table.previous().map(Membership::epoch), Some(1));
        // Installing epoch 4 directly shifts the grace window forward.
        let (m3, _) = m2.with_join("10.0.0.10:7000");
        let (m4, _) = m3.with_join("10.0.0.11:7000");
        assert!(table.install(m4));
        assert_eq!(table.previous().map(Membership::epoch), Some(2));
    }

    #[test]
    fn prev_group_exists_only_while_groups_differ() {
        let router = GroupRouter::new(5, 3);
        let m1 = Membership::bootstrap(addrs(8));
        let mut table = RoutingTable::new(router.clone(), m1.clone());
        assert!(table.prev_group(b"k").is_none(), "no grace view at bootstrap");
        let (m2, _) = m1.with_join("10.0.0.99:7000");
        table.install(m2.clone());
        // Some keys' groups changed with the join; exactly those report a
        // grace group, and it matches the old epoch's routing.
        let mut any_changed = false;
        for i in 0..200u32 {
            let key = format!("g{i}").into_bytes();
            match table.prev_group(&key) {
                Some(prev) => {
                    any_changed = true;
                    assert_eq!(prev, router.group(&m1, &key));
                    assert_ne!(prev, table.group(&key));
                }
                None => assert_eq!(router.group(&m1, &key), router.group(&m2, &key)),
            }
        }
        assert!(any_changed, "a join over 8 servers with g=5 must move something");
    }
}
