//! The sans-IO protocol engine of one server.
//!
//! [`NodeEngine`] contains *all* strategy-specific server behaviour —
//! placement, selective broadcast, reservoir sampling, the Fig. 11
//! round-robin migration — as a pure state machine: feed it an inbound
//! [`Message`], get back the outbound messages it wants delivered. The
//! simulated [`Cluster`](crate::Cluster) runs `n` engines over
//! `pls-net`'s mailboxes; the live TCP deployment (`pls-cluster`) runs
//! one engine per process over sockets. Both execute identical logic.

use pls_net::{Endpoint, ServerId};

use crate::node::{MigrationState, RrCoord, ServerNode};
use crate::{ConfigError, DetRng, Entry, HashFamily, Message, StrategySpec, Tombstone};

/// Where an outbound message should go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outbound<V> {
    /// Point-to-point to one server.
    To(ServerId, Message<V>),
    /// To every server (including the sender).
    Broadcast(Message<V>),
}

/// One server's protocol engine: local entry store plus the strategy
/// state machine.
///
/// # Example
///
/// ```
/// use pls_core::engine::{NodeEngine, Outbound};
/// use pls_core::{Message, StrategySpec};
/// use pls_net::Endpoint;
///
/// // Server 0 of a 4-server Fixed-2 cluster receives a client place.
/// let mut engine: NodeEngine<u64> =
///     NodeEngine::new(0.into(), 4, StrategySpec::fixed(2), 7)?;
/// let out = engine.handle(Endpoint::client(0), Message::PlaceReq { entries: vec![1, 2, 3] });
/// // It broadcasts the first x = 2 entries to everyone.
/// assert_eq!(out, vec![Outbound::Broadcast(Message::StoreSet { entries: vec![1, 2] })]);
/// # Ok::<(), pls_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NodeEngine<V: Entry> {
    me: ServerId,
    n: usize,
    spec: StrategySpec,
    hash_family: Option<HashFamily>,
    node: ServerNode<V>,
    rng: DetRng,
    /// How many servers mirror the round-robin coordinator counters
    /// (paper footnote 1: "the centralized head and tail scheme can be
    /// generalized to one where several servers store copies to improve
    /// reliability"). Servers `0..rr_mirrors` hold the counters; a
    /// coordinator mirror propagates every counter change to its peers.
    rr_mirrors: usize,
}

impl<V: Entry> NodeEngine<V> {
    /// Creates the engine for server `me` of an `n`-server cluster.
    ///
    /// `cluster_seed` must be **identical on every server**: it derives
    /// the shared Hash-y function family. Each engine's private RNG is
    /// derived from the seed and `me`, so servers still randomize
    /// independently (as RandomServer-x requires).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the spec is invalid for `n` servers or
    /// `me` is out of range.
    pub fn new(
        me: ServerId,
        n: usize,
        spec: StrategySpec,
        cluster_seed: u64,
    ) -> Result<Self, ConfigError> {
        spec.validate(n)?;
        if me.index() >= n {
            return Err(ConfigError::InvalidParameter("server id out of range"));
        }
        let hash_family = match spec {
            StrategySpec::Hash { y } => Some(HashFamily::new(y, n, cluster_seed)),
            _ => None,
        };
        let mut node = ServerNode::new();
        if matches!(spec, StrategySpec::RoundRobin { .. }) && me.index() == 0 {
            node.rr_coord = Some(RrCoord::default());
        }
        // Each server gets its own stream; mixing `me` keeps streams
        // distinct even though the cluster seed is shared.
        let rng = DetRng::seed_from(
            cluster_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(me.index() as u64 + 1)),
        );
        Ok(NodeEngine { me, n, spec, hash_family, node, rng, rr_mirrors: 1 })
    }

    /// Configures coordinator-counter mirroring for Round-Robin-y:
    /// servers `0..mirrors` all hold the `head`/`tail` counters, and
    /// whichever of them coordinates an update propagates the new values
    /// to the others — removing the single point of failure the paper
    /// flags in §5.4 (footnote 1 sketches exactly this generalization).
    ///
    /// Call with the same value on every engine, before any updates. A
    /// no-op for other strategies.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= mirrors <= n`.
    pub fn set_rr_mirrors(&mut self, mirrors: usize) {
        assert!(mirrors >= 1 && mirrors <= self.n, "mirrors must be in 1..=n");
        if !matches!(self.spec, StrategySpec::RoundRobin { .. }) {
            return;
        }
        self.rr_mirrors = mirrors;
        if self.me.index() < mirrors {
            if self.node.rr_coord.is_none() {
                self.node.rr_coord = Some(RrCoord::default());
            }
        } else {
            self.node.rr_coord = None;
        }
    }

    /// The configured coordinator mirror count.
    pub fn rr_mirrors(&self) -> usize {
        self.rr_mirrors
    }

    /// Outbounds that propagate this mirror's counters to its peers.
    fn rr_sync_counters(&self) -> Vec<Outbound<V>> {
        let Some((head, tail)) = self.rr_counters() else {
            return Vec::new();
        };
        (0..self.rr_mirrors)
            .filter(|&i| i != self.me.index())
            .map(|i| Outbound::To(ServerId::new(i as u32), Message::RrSetCounters { head, tail }))
            .collect()
    }

    /// This server's id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The strategy this engine runs.
    pub fn spec(&self) -> StrategySpec {
        self.spec
    }

    /// The locally stored entries (unspecified order).
    pub fn entries(&self) -> &[V] {
        self.node.store.as_slice()
    }

    /// Answers a lookup probe: `t` random local entries, or everything
    /// when fewer are stored (§3's server-side lookup behaviour).
    pub fn sample(&mut self, t: usize) -> Vec<V> {
        self.node.store.sample(t, &mut self.rng)
    }

    /// Round-robin coordinator counters `(head, tail)`, if this engine
    /// holds them.
    pub fn rr_counters(&self) -> Option<(u64, u64)> {
        self.node.rr_coord.as_ref().map(|c| (c.head, c.tail))
    }

    /// Round-robin position map (position → entry) of the local copies.
    /// Empty for non-round-robin strategies. Exposed for diagnostics and
    /// invariant checking.
    pub fn rr_positions(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.node.rr_slots.iter().map(|(p, v)| (*p, v))
    }

    /// Whether Hash-y's shared function family assigns entry `v` to
    /// server `s`. Always `false` for other strategies. Used by recovery
    /// to re-derive a rebuilt server's share of the coverage.
    pub fn assigns_to(&self, v: &V, s: ServerId) -> bool {
        self.hash_family.as_ref().is_some_and(|f| f.assign(v).contains(&s))
    }

    /// The key's current per-key version (Lamport clock) as seen by this
    /// server. Advances only through [`Message::Versioned`] traffic;
    /// unversioned (legacy / simulation) messages leave it untouched.
    pub fn version(&self) -> u64 {
        self.node.version
    }

    /// The live delete tombstones: `(entry, marker)` pairs, unordered.
    pub fn tombstones(&self) -> impl Iterator<Item = (&V, Tombstone)> + '_ {
        self.node.tombstones.iter().map(|(v, t)| (v, *t))
    }

    /// Number of live tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.node.tombstones.len()
    }

    /// Restores version/tombstone metadata after a recovery rebuild.
    ///
    /// Rebuilds start from [`Message::Reset`] (which clears tombstones),
    /// replay the donor entries, then call this with the merged donor
    /// metadata. The version only moves forward; a tombstone for an
    /// entry the rebuilt store deliberately kept is dropped (the two
    /// must never coexist — the caller decided the entry is live).
    pub fn set_version_meta(
        &mut self,
        version: u64,
        tombstones: impl IntoIterator<Item = (V, Tombstone)>,
    ) {
        self.node.version = self.node.version.max(version);
        self.node.tombstones = tombstones.into_iter().collect();
        let live: Vec<V> =
            self.node.tombstones.keys().filter(|v| self.node.store.contains(v)).cloned().collect();
        for v in live {
            self.node.tombstones.remove(&v);
        }
    }

    /// Garbage-collects tombstones born at or before `cutoff_ms`
    /// (coordinator wall-clock); returns how many were dropped. Legacy
    /// tombstones with an unknown birth time (`born_ms == 0`) are always
    /// eligible.
    pub fn gc_tombstones(&mut self, cutoff_ms: u64) -> usize {
        let before = self.node.tombstones.len();
        self.node.tombstones.retain(|_, t| t.born_ms > cutoff_ms);
        before - self.node.tombstones.len()
    }

    /// Processes one inbound message, returning the outbound messages
    /// this server wants delivered (in order).
    pub fn handle(&mut self, from: Endpoint, msg: Message<V>) -> Vec<Outbound<V>> {
        match msg {
            Message::Versioned { version, stamp_ms, msg } => {
                self.on_versioned(from, version, stamp_ms, *msg)
            }
            other => self.dispatch(from, other, None),
        }
    }

    /// [`Message::Versioned`] handling: client updates get the key's
    /// next version assigned here (the carried value is ignored — the
    /// coordinator is the authority); internal messages advance the
    /// local clock to the carried version. Every outbound message is
    /// re-wrapped with the operation's version so it propagates through
    /// multi-hop protocols (e.g. the Fig. 11 migration chain).
    fn on_versioned(
        &mut self,
        from: Endpoint,
        version: u64,
        stamp_ms: u64,
        inner: Message<V>,
    ) -> Vec<Outbound<V>> {
        if matches!(inner, Message::Versioned { .. }) {
            return Vec::new(); // nested envelopes are a protocol violation
        }
        let is_update = matches!(
            inner,
            Message::PlaceReq { .. } | Message::AddReq { .. } | Message::DeleteReq { .. }
        );
        let version = if is_update { self.node.version + 1 } else { version };
        if !is_update {
            self.node.version = self.node.version.max(version);
        }
        let out = self.dispatch(from, inner, Some((version, stamp_ms)));
        if is_update {
            if out.is_empty() {
                // The update was a protocol-level no-op (e.g. Fixed-x
                // suppressing a broadcast): nothing propagates, so the
                // version must not advance either, or the cluster would
                // look permanently stale.
                return out;
            }
            self.node.version = self.node.version.max(version);
        }
        out.into_iter()
            .map(|o| match o {
                Outbound::To(dest, m) => {
                    Outbound::To(dest, Message::Versioned { version, stamp_ms, msg: Box::new(m) })
                }
                Outbound::Broadcast(m) => {
                    Outbound::Broadcast(Message::Versioned { version, stamp_ms, msg: Box::new(m) })
                }
            })
            .collect()
    }

    /// Tombstone bookkeeping for one versioned message, applied before
    /// the strategy logic runs: delete-type messages record a marker,
    /// store-type messages supersede any marker for the same entry, and
    /// full-overwrite messages wipe the slate.
    fn note_version_effects(&mut self, msg: &Message<V>, version: u64, stamp_ms: u64) {
        match msg {
            Message::Remove { v } | Message::CountedRemove { v } | Message::RrRemove { v, .. } => {
                let t = self
                    .node
                    .tombstones
                    .entry(v.clone())
                    .or_insert(Tombstone { version: 0, born_ms: 0 });
                if version >= t.version {
                    *t = Tombstone { version, born_ms: stamp_ms };
                }
            }
            Message::Store { v } | Message::SampledStore { v, .. } | Message::RrStore { v, .. } => {
                self.clear_tombstone(v, version)
            }
            Message::MigrateRep { replacement: Some(u), .. } => self.clear_tombstone(u, version),
            Message::StoreSet { .. } | Message::ChooseSubset { .. } => {
                self.node.tombstones.clear();
            }
            _ => {}
        }
    }

    fn clear_tombstone(&mut self, v: &V, version: u64) {
        if self.node.tombstones.get(v).is_some_and(|t| version >= t.version) {
            self.node.tombstones.remove(v);
        }
    }

    fn dispatch(
        &mut self,
        from: Endpoint,
        msg: Message<V>,
        version_ctx: Option<(u64, u64)>,
    ) -> Vec<Outbound<V>> {
        if let Some((version, stamp_ms)) = version_ctx {
            self.note_version_effects(&msg, version, stamp_ms);
        }
        match msg {
            Message::Versioned { .. } => Vec::new(), // unreachable: handled above
            Message::PlaceReq { entries } => self.on_place_req(entries),
            Message::AddReq { v } => self.on_add_req(v),
            Message::DeleteReq { v } => self.on_delete_req(v),
            Message::Reset => {
                let keep_coord = self.node.rr_coord.is_some();
                let version = self.node.version;
                self.node = ServerNode::new();
                self.node.version = version;
                if keep_coord {
                    self.node.rr_coord = Some(RrCoord::default());
                }
                Vec::new()
            }
            Message::StoreSet { entries } => {
                self.node.store.clear();
                self.node.store.extend(entries);
                Vec::new()
            }
            Message::ChooseSubset { entries, x } => {
                let subset = self.rng.subset(&entries, x);
                self.node.store.clear();
                self.node.store.extend(subset);
                self.node.local_h = entries.len() as u64;
                Vec::new()
            }
            Message::Store { v } => {
                self.node.store.insert(v);
                Vec::new()
            }
            Message::Remove { v } => {
                self.node.store.remove(&v);
                Vec::new()
            }
            Message::SampledStore { v, x } => {
                self.on_sampled_store(v, x);
                Vec::new()
            }
            Message::CountedRemove { v } => {
                self.node.local_h = self.node.local_h.saturating_sub(1);
                self.node.store.remove(&v);
                Vec::new()
            }
            Message::RrInit { h } => {
                self.node.rr_coord = Some(RrCoord { head: 0, tail: h });
                Vec::new()
            }
            Message::RrSetCounters { head, tail } => {
                self.node.rr_coord = Some(RrCoord { head, tail });
                Vec::new()
            }
            Message::RrStore { v, pos } => {
                self.node.rr_insert(pos, v);
                Vec::new()
            }
            Message::RrRemove { v, head_pos } => self.on_rr_remove(v, head_pos),
            Message::MigrateReq { v, dest_pos } => self.on_migrate_req(from, v, dest_pos),
            Message::MigrateRep { v: _, dest_pos, replacement } => {
                if let Some(u) = replacement {
                    self.node.rr_insert(dest_pos, u);
                }
                Vec::new()
            }
            Message::RrRemoveAt { pos } => {
                self.node.rr_remove_at(pos);
                Vec::new()
            }
        }
    }

    fn on_place_req(&mut self, entries: Vec<V>) -> Vec<Outbound<V>> {
        match self.spec {
            StrategySpec::FullReplication => {
                vec![Outbound::Broadcast(Message::StoreSet { entries })]
            }
            StrategySpec::Fixed { x } => {
                let kept = entries[..x.min(entries.len())].to_vec();
                vec![Outbound::Broadcast(Message::StoreSet { entries: kept })]
            }
            StrategySpec::RandomServer { x } => {
                vec![Outbound::Broadcast(Message::ChooseSubset { entries, x })]
            }
            StrategySpec::RoundRobin { y } => {
                let n = self.n;
                let mut out = Vec::with_capacity(entries.len() * y + 2);
                out.push(Outbound::Broadcast(Message::Reset));
                for mirror in 0..self.rr_mirrors {
                    out.push(Outbound::To(
                        ServerId::new(mirror as u32),
                        Message::RrInit { h: entries.len() as u64 },
                    ));
                }
                for (i, v) in entries.into_iter().enumerate() {
                    for k in 0..y {
                        let dest = ServerId::new((i % n) as u32).wrapping_add(k, n);
                        out.push(Outbound::To(
                            dest,
                            Message::RrStore { v: v.clone(), pos: i as u64 },
                        ));
                    }
                }
                out
            }
            StrategySpec::Hash { .. } => {
                let family = self.hash_family.as_ref().expect("hash strategy has a family");
                let mut out = Vec::with_capacity(entries.len() * 2 + 1);
                out.push(Outbound::Broadcast(Message::Reset));
                for v in entries {
                    for dest in family.assign(&v) {
                        out.push(Outbound::To(dest, Message::Store { v: v.clone() }));
                    }
                }
                out
            }
        }
    }

    fn on_add_req(&mut self, v: V) -> Vec<Outbound<V>> {
        match self.spec {
            StrategySpec::FullReplication => vec![Outbound::Broadcast(Message::Store { v })],
            StrategySpec::Fixed { x } => {
                // Selective broadcast (§5.2): only while the shared subset
                // is below x; all servers are identical, so the local view
                // decides.
                if self.node.store.len() < x {
                    vec![Outbound::Broadcast(Message::Store { v })]
                } else {
                    Vec::new()
                }
            }
            StrategySpec::RandomServer { x } => {
                vec![Outbound::Broadcast(Message::SampledStore { v, x })]
            }
            StrategySpec::RoundRobin { y } => {
                let n = self.n;
                let coord =
                    self.node.rr_coord.as_mut().expect("round-robin updates go to the coordinator");
                let pos = coord.tail;
                coord.tail += 1;
                let mut out: Vec<Outbound<V>> = (0..y)
                    .map(|k| {
                        let dest = ServerId::new((pos % n as u64) as u32).wrapping_add(k, n);
                        Outbound::To(dest, Message::RrStore { v: v.clone(), pos })
                    })
                    .collect();
                out.extend(self.rr_sync_counters());
                out
            }
            StrategySpec::Hash { .. } => {
                let family = self.hash_family.as_ref().expect("hash strategy has a family");
                family
                    .assign(&v)
                    .into_iter()
                    .map(|dest| Outbound::To(dest, Message::Store { v: v.clone() }))
                    .collect()
            }
        }
    }

    fn on_delete_req(&mut self, v: V) -> Vec<Outbound<V>> {
        match self.spec {
            StrategySpec::FullReplication => vec![Outbound::Broadcast(Message::Remove { v })],
            StrategySpec::Fixed { .. } => {
                // Selective broadcast: only if the entry is actually among
                // the shared stored entries (§5.2).
                if self.node.store.contains(&v) {
                    vec![Outbound::Broadcast(Message::Remove { v })]
                } else {
                    Vec::new()
                }
            }
            StrategySpec::RandomServer { .. } => {
                vec![Outbound::Broadcast(Message::CountedRemove { v })]
            }
            StrategySpec::RoundRobin { .. } => {
                let coord =
                    self.node.rr_coord.as_mut().expect("round-robin updates go to the coordinator");
                if coord.head == coord.tail {
                    return Vec::new(); // nothing live to delete
                }
                let head_pos = coord.head;
                coord.head += 1;
                let mut out = vec![Outbound::Broadcast(Message::RrRemove { v, head_pos })];
                out.extend(self.rr_sync_counters());
                out
            }
            StrategySpec::Hash { .. } => {
                let family = self.hash_family.as_ref().expect("hash strategy has a family");
                family
                    .assign(&v)
                    .into_iter()
                    .map(|dest| Outbound::To(dest, Message::Remove { v: v.clone() }))
                    .collect()
            }
        }
    }

    /// Reservoir-sampling step (Vitter): after incrementing the local
    /// entry count `h`, keep the newcomer with probability `x/h`,
    /// evicting a random incumbent — maintaining a uniformly random
    /// `x`-subset under adds (§5.3).
    fn on_sampled_store(&mut self, v: V, x: usize) {
        self.node.local_h += 1;
        if self.node.store.len() < x {
            self.node.store.insert(v);
        } else {
            let p = x as f64 / self.node.local_h as f64;
            if self.rng.coin_flip(p) {
                self.node.store.remove_random(&mut self.rng);
                self.node.store.insert(v);
            }
        }
    }

    /// Fig. 11 `remove(v, head)`: drop the local copy of `v`; if this is
    /// the head server, prepare the replacement context; droppers ask the
    /// head server to migrate the replacement into the hole.
    fn on_rr_remove(&mut self, v: V, head_pos: u64) -> Vec<Outbound<V>> {
        let y = match self.spec {
            StrategySpec::RoundRobin { y } => y,
            _ => return Vec::new(), // not a round-robin server: ignore
        };
        let head_server = ServerId::new((head_pos % self.n as u64) as u32);

        let mut out = Vec::new();
        if self.me == head_server {
            let at_head = self.node.rr_slots.get(&head_pos).cloned();
            // When the deleted entry *is* the head entry there is no hole
            // to plug: copies just vanish and head has already advanced.
            let replacement = at_head.filter(|u| *u != v);
            self.node
                .rr_migrations
                .insert(v.clone(), MigrationState { remaining: y, replacement, old_pos: head_pos });
            // Replay migration requests that raced ahead of this
            // broadcast (possible over unordered transports).
            if let Some(pending) = self.node.rr_pending_migrations.remove(&v) {
                for (requester, dest_pos) in pending {
                    out.extend(self.on_migrate_req(
                        Endpoint::Server(requester),
                        v.clone(),
                        dest_pos,
                    ));
                }
            }
        }

        if let Some(dest_pos) = self.node.rr_remove_entry(&v) {
            out.push(Outbound::To(head_server, Message::MigrateReq { v, dest_pos }));
        }
        out
    }

    /// Fig. 11 `migrate(v)` at the head server: hand out the replacement,
    /// and once all `y` holders have migrated, retire the replacement's
    /// old copies.
    fn on_migrate_req(&mut self, from: Endpoint, v: V, dest_pos: u64) -> Vec<Outbound<V>> {
        let y = match self.spec {
            StrategySpec::RoundRobin { y } => y,
            _ => return Vec::new(),
        };
        let requester = from.as_server().expect("migrations come from servers");

        let Some(state) = self.node.rr_migrations.get_mut(&v) else {
            // No context yet: either this request raced ahead of our own
            // copy of the RrRemove broadcast (buffer and replay), or it is
            // truly stale. The buffer is bounded; stale leftovers are
            // overwritten by the next migration of the same entry.
            let pending = self.node.rr_pending_migrations.entry(v).or_default();
            if pending.len() < self.n {
                pending.push((requester, dest_pos));
            }
            return Vec::new();
        };
        state.remaining = state.remaining.saturating_sub(1);
        let done = state.remaining == 0;
        let replacement = state.replacement.clone();
        let old_pos = state.old_pos;

        let mut out = vec![Outbound::To(
            requester,
            Message::MigrateRep { v: v.clone(), dest_pos, replacement: replacement.clone() },
        )];
        if done {
            self.node.rr_migrations.remove(&v);
            if replacement.is_some() {
                // All migrations answered: remove the replacement's old
                // copies by position, so the new copies survive on
                // overlapping servers.
                for k in 0..y {
                    let dest =
                        ServerId::new((old_pos % self.n as u64) as u32).wrapping_add(k, self.n);
                    out.push(Outbound::To(dest, Message::RrRemoveAt { pos: old_pos }));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_share_hash_family_but_not_rng() {
        let mut a: NodeEngine<u64> =
            NodeEngine::new(0.into(), 4, StrategySpec::hash(2), 9).unwrap();
        let b: NodeEngine<u64> = NodeEngine::new(1.into(), 4, StrategySpec::hash(2), 9).unwrap();
        // Same family: an add handled at either server targets the same
        // destinations.
        let out_a = a.handle(Endpoint::client(0), Message::AddReq { v: 42 });
        let mut a2: NodeEngine<u64> =
            NodeEngine::new(1.into(), 4, StrategySpec::hash(2), 9).unwrap();
        let out_b = a2.handle(Endpoint::client(0), Message::AddReq { v: 42 });
        assert_eq!(out_a, out_b);
        drop(b);
    }

    #[test]
    fn out_of_range_server_id_rejected() {
        let err = NodeEngine::<u64>::new(5.into(), 4, StrategySpec::fixed(2), 0).unwrap_err();
        assert_eq!(err, ConfigError::InvalidParameter("server id out of range"));
    }

    #[test]
    fn only_server_zero_gets_coordinator() {
        let e0: NodeEngine<u64> =
            NodeEngine::new(0.into(), 3, StrategySpec::round_robin(2), 1).unwrap();
        let e1: NodeEngine<u64> =
            NodeEngine::new(1.into(), 3, StrategySpec::round_robin(2), 1).unwrap();
        assert_eq!(e0.rr_counters(), Some((0, 0)));
        assert_eq!(e1.rr_counters(), None);
    }

    #[test]
    fn reservoir_keeps_a_uniform_subset_under_adds() {
        // Vitter's guarantee: after placing x entries and streaming in
        // adds (no deletes), the kept x-subset is uniform over everything
        // seen. Check per-entry membership frequency across many seeds:
        // each of the h entries should be kept with probability x/h.
        let x = 5;
        let h = 40u64;
        let trials = 3000;
        let mut kept_counts = vec![0u32; h as usize];
        for seed in 0..trials {
            let mut e: NodeEngine<u64> =
                NodeEngine::new(0.into(), 1, StrategySpec::random_server(x), seed).unwrap();
            e.handle(
                Endpoint::client(0),
                Message::ChooseSubset { entries: (0..x as u64).collect(), x },
            );
            for v in x as u64..h {
                e.handle(Endpoint::client(0), Message::SampledStore { v, x });
            }
            for v in e.entries() {
                kept_counts[*v as usize] += 1;
            }
        }
        let expected = trials as f64 * x as f64 / h as f64; // 375
        for (v, &count) in kept_counts.iter().enumerate() {
            let deviation = (count as f64 - expected).abs() / expected;
            assert!(
                deviation < 0.18,
                "entry {v} kept {count} times vs expected {expected:.0} (deviation {deviation:.2})"
            );
        }
    }

    #[test]
    fn migrate_request_racing_ahead_of_rr_remove_is_buffered() {
        // Over TCP, server 2's MigrateReq can reach the head server before
        // the head server's own copy of the RrRemove broadcast. The head
        // must buffer it and answer once the context exists.
        let n = 4;
        let y = 2;
        let mut head: NodeEngine<u64> =
            NodeEngine::new(0.into(), n, StrategySpec::round_robin(y), 3).unwrap();
        // Entry 10 at head position 0 (servers 0,1); entry 30 at position
        // 2 (servers 2,3).
        head.handle(Endpoint::client(0), Message::RrStore { v: 10, pos: 0 });
        head.handle(Endpoint::client(0), Message::RrInit { h: 4 });

        // The racing request arrives first: no reply yet.
        let early = head
            .handle(Endpoint::Server(ServerId::new(2)), Message::MigrateReq { v: 30, dest_pos: 2 });
        assert!(early.is_empty());

        // Now the head's own RrRemove lands: the buffered request is
        // answered with the head entry as replacement.
        let out = head
            .handle(Endpoint::Server(ServerId::new(0)), Message::RrRemove { v: 30, head_pos: 0 });
        assert!(
            out.contains(&Outbound::To(
                ServerId::new(2),
                Message::MigrateRep { v: 30, dest_pos: 2, replacement: Some(10) },
            )),
            "buffered request not replayed: {out:?}"
        );

        // The second (in-order) request completes the migration and
        // retires the replacement's old copies.
        let out = head
            .handle(Endpoint::Server(ServerId::new(3)), Message::MigrateReq { v: 30, dest_pos: 2 });
        assert!(out.contains(&Outbound::To(
            ServerId::new(3),
            Message::MigrateRep { v: 30, dest_pos: 2, replacement: Some(10) },
        )));
        assert!(out.contains(&Outbound::To(ServerId::new(0), Message::RrRemoveAt { pos: 0 })));
        assert!(out.contains(&Outbound::To(ServerId::new(1), Message::RrRemoveAt { pos: 0 })));
    }

    #[test]
    fn rr_set_counters_overrides_init() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 3, StrategySpec::round_robin(2), 5).unwrap();
        e.handle(Endpoint::client(0), Message::RrInit { h: 10 });
        assert_eq!(e.rr_counters(), Some((0, 10)));
        e.handle(Endpoint::client(0), Message::RrSetCounters { head: 4, tail: 17 });
        assert_eq!(e.rr_counters(), Some((4, 17)));
    }

    #[test]
    fn mirrored_add_emits_counter_sync() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(1.into(), 4, StrategySpec::round_robin(2), 6).unwrap();
        e.set_rr_mirrors(2);
        assert_eq!(e.rr_mirrors(), 2);
        e.handle(Endpoint::client(0), Message::RrSetCounters { head: 0, tail: 5 });
        let out = e.handle(Endpoint::client(0), Message::AddReq { v: 9 });
        // Two RrStore destinations plus one counter sync to mirror 0.
        assert!(out.contains(&Outbound::To(
            ServerId::new(0),
            Message::RrSetCounters { head: 0, tail: 6 }
        )));
        let stores =
            out.iter().filter(|o| matches!(o, Outbound::To(_, Message::RrStore { .. }))).count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn unmirrored_updates_emit_no_counter_sync() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 4, StrategySpec::round_robin(2), 7).unwrap();
        e.handle(Endpoint::client(0), Message::RrInit { h: 0 });
        let out = e.handle(Endpoint::client(0), Message::AddReq { v: 1 });
        assert!(
            !out.iter().any(|o| matches!(o, Outbound::To(_, Message::RrSetCounters { .. }))),
            "single-coordinator mode must not sync counters: {out:?}"
        );
    }

    #[test]
    fn set_rr_mirrors_is_noop_for_other_strategies() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 4, StrategySpec::hash(2), 8).unwrap();
        e.set_rr_mirrors(3);
        assert_eq!(e.rr_mirrors(), 1);
        assert_eq!(e.rr_counters(), None);
    }

    #[test]
    #[should_panic(expected = "mirrors must be in 1..=n")]
    fn zero_mirrors_rejected() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 4, StrategySpec::round_robin(2), 9).unwrap();
        e.set_rr_mirrors(0);
    }

    #[test]
    fn assigns_to_matches_actual_placement() {
        let n = 6;
        let engines: Vec<NodeEngine<u64>> = (0..n)
            .map(|i| NodeEngine::new(ServerId::new(i as u32), n, StrategySpec::hash(2), 10))
            .collect::<Result<_, _>>()
            .unwrap();
        for v in 0..50u64 {
            let assigned: Vec<usize> =
                (0..n).filter(|&i| engines[0].assigns_to(&v, ServerId::new(i as u32))).collect();
            assert!(!assigned.is_empty() && assigned.len() <= 2, "entry {v}: {assigned:?}");
            // Every engine agrees on the assignment (shared family).
            for e in &engines {
                let theirs: Vec<usize> =
                    (0..n).filter(|&i| e.assigns_to(&v, ServerId::new(i as u32))).collect();
                assert_eq!(theirs, assigned, "entry {v}");
            }
        }
    }

    fn versioned(msg: Message<u64>, stamp_ms: u64) -> Message<u64> {
        Message::Versioned { version: 0, stamp_ms, msg: Box::new(msg) }
    }

    #[test]
    fn versioned_updates_bump_the_key_clock_and_wrap_fanout() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 3, StrategySpec::full_replication(), 4).unwrap();
        assert_eq!(e.version(), 0);
        let out =
            e.handle(Endpoint::client(0), versioned(Message::PlaceReq { entries: vec![1] }, 10));
        assert_eq!(e.version(), 1);
        assert_eq!(
            out,
            vec![Outbound::Broadcast(Message::Versioned {
                version: 1,
                stamp_ms: 10,
                msg: Box::new(Message::StoreSet { entries: vec![1] }),
            })]
        );
        e.handle(Endpoint::client(0), versioned(Message::AddReq { v: 2 }, 11));
        assert_eq!(e.version(), 2);
        // Internal messages max the clock instead of bumping it.
        e.handle(
            Endpoint::Server(ServerId::new(1)),
            Message::Versioned { version: 9, stamp_ms: 0, msg: Box::new(Message::Store { v: 3 }) },
        );
        assert_eq!(e.version(), 9);
        // Unversioned traffic leaves the clock alone.
        e.handle(Endpoint::client(0), Message::AddReq { v: 4 });
        assert_eq!(e.version(), 9);
    }

    #[test]
    fn noop_updates_do_not_advance_the_version() {
        // Fixed-2 with a full cushion suppresses the add broadcast; the
        // version must stay put or the cluster looks permanently stale.
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 3, StrategySpec::fixed(2), 4).unwrap();
        e.handle(Endpoint::client(0), versioned(Message::PlaceReq { entries: vec![1, 2, 3] }, 1));
        let v = e.version();
        e.handle(
            Endpoint::Server(ServerId::new(0)),
            Message::Versioned {
                version: v,
                stamp_ms: 1,
                msg: Box::new(Message::StoreSet { entries: vec![1, 2] }),
            },
        );
        let out = e.handle(Endpoint::client(0), versioned(Message::AddReq { v: 9 }, 2));
        assert!(out.is_empty());
        assert_eq!(e.version(), v);
    }

    #[test]
    fn versioned_deletes_leave_tombstones_and_readds_clear_them() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 2, StrategySpec::random_server(1), 5).unwrap();
        e.handle(
            Endpoint::Server(ServerId::new(1)),
            Message::Versioned {
                version: 3,
                stamp_ms: 77,
                msg: Box::new(Message::CountedRemove { v: 8 }),
            },
        );
        assert_eq!(e.tombstone_count(), 1);
        let (v, t) = e.tombstones().next().map(|(v, t)| (*v, t)).unwrap();
        assert_eq!((v, t.version, t.born_ms), (8, 3, 77));
        // A stale re-add (older version) must not clear the marker.
        e.handle(
            Endpoint::Server(ServerId::new(1)),
            Message::Versioned {
                version: 2,
                stamp_ms: 0,
                msg: Box::new(Message::SampledStore { v: 8, x: 1 }),
            },
        );
        assert_eq!(e.tombstone_count(), 1);
        // A fresh re-add supersedes it.
        e.handle(
            Endpoint::Server(ServerId::new(1)),
            Message::Versioned {
                version: 4,
                stamp_ms: 0,
                msg: Box::new(Message::SampledStore { v: 8, x: 1 }),
            },
        );
        assert_eq!(e.tombstone_count(), 0);
    }

    #[test]
    fn gc_drops_old_tombstones_and_reset_keeps_the_version() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 2, StrategySpec::full_replication(), 6).unwrap();
        for (ver, stamp, v) in [(1u64, 100u64, 1u64), (2, 200, 2)] {
            e.handle(
                Endpoint::Server(ServerId::new(1)),
                Message::Versioned {
                    version: ver,
                    stamp_ms: stamp,
                    msg: Box::new(Message::Remove { v }),
                },
            );
        }
        assert_eq!(e.tombstone_count(), 2);
        assert_eq!(e.gc_tombstones(100), 1);
        assert_eq!(e.tombstone_count(), 1);
        assert_eq!(e.version(), 2);
        e.handle(Endpoint::client(0), Message::Reset);
        assert_eq!(e.version(), 2, "Reset must not rewind the key clock");
        assert_eq!(e.tombstone_count(), 0);
    }

    #[test]
    fn set_version_meta_restores_recovery_state() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 2, StrategySpec::full_replication(), 7).unwrap();
        e.handle(Endpoint::client(0), Message::StoreSet { entries: vec![1, 2] });
        e.set_version_meta(
            5,
            vec![
                (9, Tombstone { version: 4, born_ms: 50 }),
                // Conflicts with a live entry: dropped.
                (1, Tombstone { version: 3, born_ms: 40 }),
            ],
        );
        assert_eq!(e.version(), 5);
        assert_eq!(e.tombstone_count(), 1);
        assert!(e.tombstones().all(|(v, _)| *v == 9));
        // The version only moves forward.
        e.set_version_meta(2, Vec::new());
        assert_eq!(e.version(), 5);
    }

    #[test]
    fn nested_versioned_envelopes_are_dropped() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 2, StrategySpec::full_replication(), 8).unwrap();
        let nested = Message::Versioned {
            version: 1,
            stamp_ms: 0,
            msg: Box::new(Message::Versioned {
                version: 2,
                stamp_ms: 0,
                msg: Box::new(Message::Store { v: 1 }),
            }),
        };
        assert!(e.handle(Endpoint::client(0), nested).is_empty());
        assert_eq!(e.entries().len(), 0);
    }

    #[test]
    fn store_and_sample_roundtrip() {
        let mut e: NodeEngine<u64> =
            NodeEngine::new(0.into(), 2, StrategySpec::full_replication(), 2).unwrap();
        assert!(e
            .handle(Endpoint::client(0), Message::StoreSet { entries: vec![1, 2, 3] })
            .is_empty());
        assert_eq!(e.entries().len(), 3);
        let s = e.sample(2);
        assert_eq!(s.len(), 2);
        let s = e.sample(10);
        assert_eq!(s.len(), 3);
    }
}
