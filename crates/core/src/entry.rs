//! The entry abstraction.
//!
//! The paper treats entries as opaque, equal-sized values (IP addresses,
//! URLs, file locations). Anything cloneable, hashable and comparable can
//! be an entry; simulations use plain `u64` ids, the live deployment uses
//! byte strings.

use std::fmt::Debug;
use std::hash::Hash;

/// Types that can serve as lookup-service entries.
///
/// This is a blanket trait: implement nothing — any `Clone + Eq + Hash +
/// Debug` type qualifies automatically. `Hash` is required because Hash-y
/// derives server assignments from a hash of the entry, and because servers
/// index their local stores by entry.
///
/// # Example
///
/// ```
/// use pls_core::Entry;
/// fn assert_entry<V: Entry>() {}
/// assert_entry::<u64>();
/// assert_entry::<String>();
/// assert_entry::<(u32, &'static str)>();
/// ```
pub trait Entry: Clone + Eq + Hash + Debug {}

impl<T: Clone + Eq + Hash + Debug> Entry for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct SongLocation {
        host: String,
        port: u16,
    }

    fn requires_entry<V: Entry>(v: V) -> V {
        v
    }

    #[test]
    fn custom_structs_are_entries() {
        let loc = SongLocation { host: "peer1.example".into(), port: 6699 };
        assert_eq!(requires_entry(loc.clone()), loc);
    }

    #[test]
    fn primitive_entries() {
        assert_eq!(requires_entry(17u64), 17);
        assert_eq!(requires_entry("url"), "url");
    }
}
