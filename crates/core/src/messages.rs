//! The wire protocol of the five strategies.
//!
//! Every `place` / `add` / `delete` is a client request delivered to one
//! server (the *coordinator* for that operation), which fans out internal
//! messages. The message set below is the union of all five strategies'
//! protocols; which subset a cluster uses depends on its
//! [`StrategySpec`](crate::StrategySpec).

/// Messages exchanged between clients and servers, and among servers.
///
/// The round-robin subset implements Figure 11 of the paper: `RrRemove` is
/// the broadcast `remove(v, head)`, `MigrateReq`/`MigrateRep` are the
/// `migrate(v)` RPC split into an asynchronous request/response pair, and
/// `RrRemoveAt` is the final `remove(u)` cleanup of the replacement
/// entry's old copies (addressed by position so the freshly migrated
/// copies survive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message<V> {
    // ---- version-stamped envelope ----
    /// Version stamp around any other message. A coordinator wraps an
    /// inbound client update to have the engine assign the key's next
    /// version (the carried `version` is ignored for client requests),
    /// and the engine wraps every resulting internal fan-out message
    /// with the assigned version so receivers advance their per-key
    /// Lamport clock and can record delete tombstones. Nesting is not
    /// allowed: a `Versioned` inside a `Versioned` is dropped.
    Versioned {
        /// The per-key version this operation was coordinated at.
        version: u64,
        /// Coordinator wall-clock (ms since the Unix epoch) when the
        /// operation was accepted; seeds tombstone ages without giving
        /// the sans-IO engine a clock.
        stamp_ms: u64,
        /// The wrapped message.
        msg: Box<Message<V>>,
    },

    // ---- client requests ----
    /// Batch-specify the entry set (§2 `place`). Sent to a random server.
    PlaceReq {
        /// The full entry set `v_1 .. v_h`.
        entries: Vec<V>,
    },
    /// Incremental insert (§2 `add`).
    AddReq {
        /// The new entry.
        v: V,
    },
    /// Incremental removal (§2 `delete`).
    DeleteReq {
        /// The entry to remove.
        v: V,
    },

    // ---- shared internals ----
    /// Discard all local state for this key (sent ahead of a fresh
    /// `place` by strategies whose placement messages are per-entry and
    /// would otherwise merge with leftovers).
    Reset,

    // ---- replication-family internals ----
    /// Overwrite the local store with exactly this set (full replication
    /// and Fixed-x placement broadcasts).
    StoreSet {
        /// Entries every receiver must copy.
        entries: Vec<V>,
    },
    /// RandomServer-x placement broadcast: each receiver independently
    /// keeps a uniformly random `x`-subset.
    ChooseSubset {
        /// The full entry set to sample from.
        entries: Vec<V>,
        /// Subset size each server keeps.
        x: usize,
    },
    /// Store a single entry locally.
    Store {
        /// The entry.
        v: V,
    },
    /// Remove a single entry locally.
    Remove {
        /// The entry.
        v: V,
    },
    /// RandomServer-x add broadcast: reservoir-sampling step (Vitter).
    /// Receiver increments its local entry counter `h` and keeps `v` with
    /// probability `x/h` (always, when it still has fewer than `x`).
    SampledStore {
        /// The new entry.
        v: V,
        /// The reservoir size `x`.
        x: usize,
    },
    /// RandomServer-x delete broadcast: receiver decrements its local `h`
    /// and drops its copy of `v` if it has one.
    CountedRemove {
        /// The deleted entry.
        v: V,
    },

    // ---- round-robin internals (Fig. 11) ----
    /// Initialize the coordinator counters after a `place` of `h` entries:
    /// `head = 0`, `tail = h`.
    RrInit {
        /// Number of placed entries.
        h: u64,
    },
    /// Restore the coordinator counters to explicit values (recovery
    /// resync of server 0).
    RrSetCounters {
        /// Position of the oldest live entry.
        head: u64,
        /// Position the next added entry will receive.
        tail: u64,
    },
    /// Store `v` at round-robin position `pos`.
    RrStore {
        /// The entry.
        v: V,
        /// Its global position in the round-robin sequence.
        pos: u64,
    },
    /// The coordinator's `remove(v, head)` broadcast: delete `v`, and ask
    /// the head server for a replacement to plug the hole.
    RrRemove {
        /// The entry being deleted.
        v: V,
        /// The head position *before* the coordinator advanced it; the
        /// entry living there becomes the replacement.
        head_pos: u64,
    },
    /// `migrate(v)`: a server that deleted its copy of `v` (which sat at
    /// position `dest_pos`) asks the head server for the replacement.
    MigrateReq {
        /// The deleted entry.
        v: V,
        /// The now-vacant position the replacement will adopt.
        dest_pos: u64,
    },
    /// Reply to [`Message::MigrateReq`]: store `replacement` at
    /// `dest_pos`. `None` means the deleted entry *was* the head entry, so
    /// no migration is needed.
    MigrateRep {
        /// The entry that was deleted (keys the requester's context).
        v: V,
        /// The vacant position.
        dest_pos: u64,
        /// The entry to move into the hole, if any.
        replacement: Option<V>,
    },
    /// Remove whatever entry sits at round-robin position `pos` — the
    /// replacement entry's old copy, after all migrations completed.
    RrRemoveAt {
        /// The stale position.
        pos: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m: Message<u32> = Message::RrRemove { v: 7, head_pos: 3 };
        assert_eq!(m.clone(), m);
        let rep: Message<u32> = Message::MigrateRep { v: 7, dest_pos: 5, replacement: None };
        assert_ne!(rep, m);
    }

    #[test]
    fn debug_is_informative() {
        let m: Message<&str> = Message::Store { v: "peer9" };
        assert!(format!("{m:?}").contains("peer9"));
    }
}
