//! Strategy selection and parameter validation.

use std::error::Error;
use std::fmt;

/// Which of the paper's five strategies a cluster runs, with its parameter.
///
/// Construct via the named constructors, which document the parameter, or
/// compare apples-to-apples at a fixed storage budget with
/// [`StrategySpec::for_storage_budget`] (the setup of Figures 4 and 7: a
/// 200-entry budget over 10 servers yields Fixed-20 / RandomServer-20 /
/// Round-2 / Hash-2).
///
/// # Example
///
/// ```
/// use pls_core::{StrategyKind, StrategySpec};
/// let spec = StrategySpec::for_storage_budget(StrategyKind::RoundRobin, 200, 100, 10)?;
/// assert_eq!(spec, StrategySpec::round_robin(2));
/// # Ok::<(), pls_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategySpec {
    /// Every entry on every server (§3.1).
    FullReplication,
    /// The same subset of `x` entries on every server (§3.2).
    Fixed {
        /// How many entries each server keeps. Must cover the largest
        /// target answer size, plus a cushion under deletes (§5.2).
        x: usize,
    },
    /// An independent uniformly random `x`-subset per server (§3.3).
    RandomServer {
        /// How many entries each server keeps.
        x: usize,
    },
    /// Entry `i` stored on servers `i .. i+y-1 (mod n)` (§3.4).
    RoundRobin {
        /// Number of copies of each entry.
        y: usize,
    },
    /// Entry `v` stored on servers `f_1(v) .. f_y(v)` (§3.5).
    Hash {
        /// Number of hash functions (maximum copies per entry).
        y: usize,
    },
}

/// Discriminant of [`StrategySpec`], for parameterizing experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// See [`StrategySpec::FullReplication`].
    FullReplication,
    /// See [`StrategySpec::Fixed`].
    Fixed,
    /// See [`StrategySpec::RandomServer`].
    RandomServer,
    /// See [`StrategySpec::RoundRobin`].
    RoundRobin,
    /// See [`StrategySpec::Hash`].
    Hash,
}

impl StrategyKind {
    /// All five strategies, in the paper's presentation order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::FullReplication,
        StrategyKind::Fixed,
        StrategyKind::RandomServer,
        StrategyKind::RoundRobin,
        StrategyKind::Hash,
    ];
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StrategyKind::FullReplication => "FullReplication",
            StrategyKind::Fixed => "Fixed",
            StrategyKind::RandomServer => "RandomServer",
            StrategyKind::RoundRobin => "RoundRobin",
            StrategyKind::Hash => "Hash",
        };
        f.write_str(name)
    }
}

impl StrategySpec {
    /// Full replication: every entry everywhere.
    pub fn full_replication() -> Self {
        StrategySpec::FullReplication
    }

    /// Fixed-x: the same `x` entries on each server.
    pub fn fixed(x: usize) -> Self {
        StrategySpec::Fixed { x }
    }

    /// RandomServer-x: an independent random `x`-subset per server.
    pub fn random_server(x: usize) -> Self {
        StrategySpec::RandomServer { x }
    }

    /// Round-Robin-y: `y` copies of each entry on consecutive servers.
    pub fn round_robin(y: usize) -> Self {
        StrategySpec::RoundRobin { y }
    }

    /// Hash-y: up to `y` copies of each entry at hashed servers.
    pub fn hash(y: usize) -> Self {
        StrategySpec::Hash { y }
    }

    /// The strategy family this spec belongs to.
    pub fn kind(&self) -> StrategyKind {
        match self {
            StrategySpec::FullReplication => StrategyKind::FullReplication,
            StrategySpec::Fixed { .. } => StrategyKind::Fixed,
            StrategySpec::RandomServer { .. } => StrategyKind::RandomServer,
            StrategySpec::RoundRobin { .. } => StrategyKind::RoundRobin,
            StrategySpec::Hash { .. } => StrategyKind::Hash,
        }
    }

    /// Derives the strategy parameter from a total storage budget, using
    /// the Table 1 cost formulas: per-server strategies get `x = budget/n`,
    /// per-entry strategies get `y = budget/h` (integer division, so actual
    /// usage never exceeds the budget).
    ///
    /// # Errors
    ///
    /// [`ConfigError::BudgetTooSmall`] when the derived parameter would be
    /// zero; [`ConfigError::InvalidParameter`] when `n` or `h` is zero.
    /// Full replication ignores the budget but requires `n` and `h`
    /// nonzero for consistency.
    pub fn for_storage_budget(
        kind: StrategyKind,
        budget: usize,
        h: usize,
        n: usize,
    ) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::InvalidParameter("server count n must be positive"));
        }
        if h == 0 {
            return Err(ConfigError::InvalidParameter("entry count h must be positive"));
        }
        let spec = match kind {
            StrategyKind::FullReplication => StrategySpec::FullReplication,
            StrategyKind::Fixed => StrategySpec::Fixed { x: budget / n },
            StrategyKind::RandomServer => StrategySpec::RandomServer { x: budget / n },
            StrategyKind::RoundRobin => StrategySpec::RoundRobin { y: budget / h },
            StrategyKind::Hash => StrategySpec::Hash { y: budget / h },
        };
        match spec.validate(n) {
            Ok(()) => Ok(spec),
            Err(ConfigError::InvalidParameter(_)) => {
                Err(ConfigError::BudgetTooSmall { budget, h, n })
            }
            Err(e) => Err(e),
        }
    }

    /// Checks the parameter against a cluster of `n` servers.
    ///
    /// # Errors
    ///
    /// * `x == 0` or `y == 0` — a server keeping nothing can serve nothing.
    /// * `y > n` for Round-Robin — more copies than servers is meaningless
    ///   (Hash-y tolerates `y > n` since collisions just collapse copies).
    pub fn validate(&self, n: usize) -> Result<(), ConfigError> {
        if n == 0 {
            return Err(ConfigError::InvalidParameter("server count n must be positive"));
        }
        match *self {
            StrategySpec::FullReplication => Ok(()),
            StrategySpec::Fixed { x } | StrategySpec::RandomServer { x } => {
                if x == 0 {
                    Err(ConfigError::InvalidParameter("parameter x must be positive"))
                } else {
                    Ok(())
                }
            }
            StrategySpec::RoundRobin { y } => {
                if y == 0 {
                    Err(ConfigError::InvalidParameter("parameter y must be positive"))
                } else if y > n {
                    Err(ConfigError::TooManyCopies { y, n })
                } else {
                    Ok(())
                }
            }
            StrategySpec::Hash { y } => {
                if y == 0 {
                    Err(ConfigError::InvalidParameter("parameter y must be positive"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StrategySpec::FullReplication => write!(f, "FullReplication"),
            StrategySpec::Fixed { x } => write!(f, "Fixed-{x}"),
            StrategySpec::RandomServer { x } => write!(f, "RandomServer-{x}"),
            StrategySpec::RoundRobin { y } => write!(f, "Round-{y}"),
            StrategySpec::Hash { y } => write!(f, "Hash-{y}"),
        }
    }
}

/// Error building or validating a strategy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter was structurally invalid (zero where positive needed).
    InvalidParameter(&'static str),
    /// Round-Robin-y with more copies than servers.
    TooManyCopies {
        /// Requested copies per entry.
        y: usize,
        /// Available servers.
        n: usize,
    },
    /// A storage budget too small to give every server / entry anything.
    BudgetTooSmall {
        /// The requested budget, in entries.
        budget: usize,
        /// Entry count the budget was divided over.
        h: usize,
        /// Server count the budget was divided over.
        n: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ConfigError::TooManyCopies { y, n } => {
                write!(f, "round-robin with y={y} copies exceeds n={n} servers")
            }
            ConfigError::BudgetTooSmall { budget, h, n } => {
                write!(f, "storage budget {budget} too small for {h} entries on {n} servers")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_parameterization() {
        // The paper's fixed-budget comparison: 200 entries of storage for
        // 100 entries on 10 servers.
        let fixed = StrategySpec::for_storage_budget(StrategyKind::Fixed, 200, 100, 10).unwrap();
        let rs =
            StrategySpec::for_storage_budget(StrategyKind::RandomServer, 200, 100, 10).unwrap();
        let rr = StrategySpec::for_storage_budget(StrategyKind::RoundRobin, 200, 100, 10).unwrap();
        let hash = StrategySpec::for_storage_budget(StrategyKind::Hash, 200, 100, 10).unwrap();
        assert_eq!(fixed, StrategySpec::fixed(20));
        assert_eq!(rs, StrategySpec::random_server(20));
        assert_eq!(rr, StrategySpec::round_robin(2));
        assert_eq!(hash, StrategySpec::hash(2));
    }

    #[test]
    fn budget_too_small_is_reported() {
        let err = StrategySpec::for_storage_budget(StrategyKind::Fixed, 5, 100, 10).unwrap_err();
        assert_eq!(err, ConfigError::BudgetTooSmall { budget: 5, h: 100, n: 10 });
        let err =
            StrategySpec::for_storage_budget(StrategyKind::RoundRobin, 50, 100, 10).unwrap_err();
        assert_eq!(err, ConfigError::BudgetTooSmall { budget: 50, h: 100, n: 10 });
    }

    #[test]
    fn validation_rules() {
        assert!(StrategySpec::fixed(0).validate(10).is_err());
        assert!(StrategySpec::random_server(1).validate(10).is_ok());
        assert!(StrategySpec::round_robin(11).validate(10).is_err());
        assert_eq!(
            StrategySpec::round_robin(11).validate(10),
            Err(ConfigError::TooManyCopies { y: 11, n: 10 })
        );
        // Hash-y tolerates y > n (collisions collapse copies).
        assert!(StrategySpec::hash(20).validate(10).is_ok());
        assert!(StrategySpec::full_replication().validate(1).is_ok());
        assert!(StrategySpec::full_replication().validate(0).is_err());
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(StrategySpec::fixed(20).to_string(), "Fixed-20");
        assert_eq!(StrategySpec::random_server(20).to_string(), "RandomServer-20");
        assert_eq!(StrategySpec::round_robin(2).to_string(), "Round-2");
        assert_eq!(StrategySpec::hash(2).to_string(), "Hash-2");
        assert_eq!(StrategySpec::full_replication().to_string(), "FullReplication");
    }

    #[test]
    fn kind_roundtrip() {
        for kind in StrategyKind::ALL {
            let spec = StrategySpec::for_storage_budget(kind, 200, 100, 10).unwrap();
            assert_eq!(spec.kind(), kind);
        }
    }

    #[test]
    fn errors_display_cleanly() {
        let err = ConfigError::TooManyCopies { y: 5, n: 3 };
        assert_eq!(err.to_string(), "round-robin with y=5 copies exceeds n=3 servers");
    }
}
