//! Strategy selection: the paper's rules of thumb, as code.
//!
//! The paper closes with Table 2, an informal star rating of the four
//! partial-lookup strategies against its metrics, plus scattered empirical
//! rules ("if the target answer size is a small fraction of the total —
//! typically less than 1/n — Fixed-x has less update overhead", §6.4; "if
//! we want no unfairness we are forced to use full replication or
//! round-robin", §4.5; …). This module encodes both: [`star_table`]
//! reproduces Table 2 verbatim, and [`recommend`] turns a workload
//! description ([`Requirements`]) into a concrete
//! [`StrategySpec`] following the paper's guidance.

use std::fmt;

use crate::{StrategyKind, StrategySpec};

/// The quality/overhead dimensions of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Total storage, when a key has few entries.
    StorageFewEntries,
    /// Total storage, when a key has many entries.
    StorageManyEntries,
    /// Maximum coverage (§4.3).
    Coverage,
    /// Adversarial fault tolerance (§4.4).
    FaultTolerance,
    /// Fairness of lookup answers with few updates (§4.5).
    FairnessFewUpdates,
    /// Fairness of lookup answers under heavy updates (§6.3).
    FairnessManyUpdates,
    /// Client lookup cost (§4.2).
    LookupCost,
    /// Update overhead with a small target answer size (§6.4).
    UpdateOverheadSmallTarget,
    /// Update overhead with a large target answer size (§6.4).
    UpdateOverheadLargeTarget,
}

impl Dimension {
    /// All dimensions in Table 2's column order.
    pub const ALL: [Dimension; 9] = [
        Dimension::StorageFewEntries,
        Dimension::StorageManyEntries,
        Dimension::Coverage,
        Dimension::FaultTolerance,
        Dimension::FairnessFewUpdates,
        Dimension::FairnessManyUpdates,
        Dimension::LookupCost,
        Dimension::UpdateOverheadSmallTarget,
        Dimension::UpdateOverheadLargeTarget,
    ];
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Dimension::StorageFewEntries => "storage (few entries)",
            Dimension::StorageManyEntries => "storage (many entries)",
            Dimension::Coverage => "coverage",
            Dimension::FaultTolerance => "fault tolerance",
            Dimension::FairnessFewUpdates => "fairness (few updates)",
            Dimension::FairnessManyUpdates => "fairness (many updates)",
            Dimension::LookupCost => "lookup cost",
            Dimension::UpdateOverheadSmallTarget => "update overhead (small target)",
            Dimension::UpdateOverheadLargeTarget => "update overhead (large target)",
        };
        f.write_str(name)
    }
}

/// A 1–4 star suitability rating ("more stars is better").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stars(u8);

impl Stars {
    /// Creates a rating.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= stars <= 4`.
    pub fn new(stars: u8) -> Self {
        assert!((1..=4).contains(&stars), "ratings are 1..=4 stars");
        Stars(stars)
    }

    /// The numeric rating.
    pub fn count(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Stars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for _ in 0..self.0 {
            write!(f, "★")?;
        }
        Ok(())
    }
}

/// The paper's Table 2 rating for one strategy on one dimension.
///
/// Full replication is not in Table 2 (it is the baseline, not a
/// partial-lookup strategy); asking for it returns `None`.
pub fn rating(kind: StrategyKind, dim: Dimension) -> Option<Stars> {
    use Dimension as D;
    use StrategyKind as K;
    let stars = match (kind, dim) {
        (K::Fixed, D::StorageFewEntries) => 4,
        (K::Fixed, D::StorageManyEntries) => 4,
        (K::Fixed, D::Coverage) => 1,
        (K::Fixed, D::FaultTolerance) => 4,
        (K::Fixed, D::FairnessFewUpdates) => 1,
        (K::Fixed, D::FairnessManyUpdates) => 1,
        (K::Fixed, D::LookupCost) => 4,
        (K::Fixed, D::UpdateOverheadSmallTarget) => 4,
        (K::Fixed, D::UpdateOverheadLargeTarget) => 2,

        (K::RandomServer, D::StorageFewEntries) => 4,
        (K::RandomServer, D::StorageManyEntries) => 4,
        (K::RandomServer, D::Coverage) => 3,
        (K::RandomServer, D::FaultTolerance) => 3,
        (K::RandomServer, D::FairnessFewUpdates) => 3,
        (K::RandomServer, D::FairnessManyUpdates) => 1,
        (K::RandomServer, D::LookupCost) => 3,
        (K::RandomServer, D::UpdateOverheadSmallTarget) => 2,
        (K::RandomServer, D::UpdateOverheadLargeTarget) => 2,

        (K::RoundRobin, D::StorageFewEntries) => 4,
        (K::RoundRobin, D::StorageManyEntries) => 2,
        (K::RoundRobin, D::Coverage) => 4,
        (K::RoundRobin, D::FaultTolerance) => 3,
        (K::RoundRobin, D::FairnessFewUpdates) => 4,
        (K::RoundRobin, D::FairnessManyUpdates) => 4,
        (K::RoundRobin, D::LookupCost) => 4,
        (K::RoundRobin, D::UpdateOverheadSmallTarget) => 1,
        (K::RoundRobin, D::UpdateOverheadLargeTarget) => 1,

        (K::Hash, D::StorageFewEntries) => 4,
        (K::Hash, D::StorageManyEntries) => 2,
        (K::Hash, D::Coverage) => 4,
        (K::Hash, D::FaultTolerance) => 2,
        (K::Hash, D::FairnessFewUpdates) => 3,
        (K::Hash, D::FairnessManyUpdates) => 3,
        (K::Hash, D::LookupCost) => 2,
        (K::Hash, D::UpdateOverheadSmallTarget) => 3,
        (K::Hash, D::UpdateOverheadLargeTarget) => 4,

        (K::FullReplication, _) => return None,
    };
    Some(Stars::new(stars))
}

/// The four partial-lookup strategies Table 2 rates, in row order.
pub const TABLE2_ROWS: [StrategyKind; 4] =
    [StrategyKind::Fixed, StrategyKind::RandomServer, StrategyKind::RoundRobin, StrategyKind::Hash];

/// The full Table 2 as `(strategy, [(dimension, stars); 9])` rows.
pub fn star_table() -> Vec<(StrategyKind, Vec<(Dimension, Stars)>)> {
    TABLE2_ROWS
        .iter()
        .map(|&kind| {
            let cells = Dimension::ALL
                .iter()
                .map(|&dim| (dim, rating(kind, dim).expect("table rows are rated")))
                .collect();
            (kind, cells)
        })
        .collect()
}

/// A workload description for [`recommend`].
///
/// Use [`Requirements::new`] with the system shape, then tighten with the
/// builder-style setters.
///
/// # Example
///
/// ```
/// use pls_core::advisor::{recommend, Requirements};
/// use pls_core::StrategySpec;
///
/// // A Napster-style directory: popular key, many entries, few updates,
/// // fairness matters so no provider is overloaded.
/// let req = Requirements::new(10, 100, 5).fairness_required(true);
/// assert_eq!(recommend(&req), StrategySpec::round_robin(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Requirements {
    n: usize,
    h: usize,
    t: usize,
    update_heavy: bool,
    fairness_required: bool,
    complete_coverage: bool,
    fixed_server_capacity: Option<usize>,
    storage_unconstrained: bool,
}

impl Requirements {
    /// Describes a system of `n` servers managing roughly `h` entries per
    /// key, with clients asking for `t` entries per lookup.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(n: usize, h: usize, t: usize) -> Self {
        assert!(n > 0 && h > 0 && t > 0, "n, h, t must be positive");
        Requirements {
            n,
            h,
            t,
            update_heavy: false,
            fairness_required: false,
            complete_coverage: false,
            fixed_server_capacity: None,
            storage_unconstrained: false,
        }
    }

    /// Whether the key sees a high add/delete rate (§6.3's regime).
    pub fn update_heavy(mut self, yes: bool) -> Self {
        self.update_heavy = yes;
        self
    }

    /// Whether lookup answers must be unbiased across entries (§4.5).
    pub fn fairness_required(mut self, yes: bool) -> Self {
        self.fairness_required = yes;
        self
    }

    /// Whether some clients may eventually want *every* entry (§4.3).
    pub fn complete_coverage(mut self, yes: bool) -> Self {
        self.complete_coverage = yes;
        self
    }

    /// Per-server storage is capped at this many entries (e.g. the
    /// physical-memory scenario of §4.1).
    pub fn fixed_server_capacity(mut self, entries: usize) -> Self {
        self.fixed_server_capacity = Some(entries);
        self
    }

    /// Storage is plentiful; optimize purely for lookup quality.
    pub fn storage_unconstrained(mut self, yes: bool) -> Self {
        self.storage_unconstrained = yes;
        self
    }
}

/// Picks a strategy (with parameter) following the paper's guidance.
///
/// Decision sketch, in the paper's own priority order:
///
/// 1. Storage unconstrained and fairness required → **full replication**
///    (fair, lookup cost 1) — the baseline wins when its cost is free.
/// 2. Update-heavy → Fixed-x or Hash-y (§6.3 rules out RandomServer-x and
///    Round-y). Between them, §6.4: `t/h < 1/n` → **Fixed-x** with a 20%
///    cushion, else **Hash-y** with the adaptive `y = ceil(t·n/h)`.
/// 3. Fairness required → **Round-Robin-y** (zero unfairness; §4.5).
/// 4. Complete coverage → **Round-Robin-y** (static regime) per §4.3.
/// 5. Fixed per-server capacity `c` → **RandomServer-c** (constant
///    per-server storage plus decent coverage/fairness; §4.1), degraded to
///    **Fixed-c** when `c < t` would force multi-server merges anyway —
///    at that point coverage is the deciding factor, which RandomServer
///    still wins, so RandomServer-c stays the pick.
/// 6. Otherwise → **Round-Robin-y** with `y = ceil(t·n/h)` (best lookup
///    cost and fairness in the static case).
pub fn recommend(req: &Requirements) -> StrategySpec {
    let adaptive_y = |t: usize, n: usize, h: usize| ((t * n).div_ceil(h)).clamp(1, n);

    if req.storage_unconstrained && req.fairness_required && !req.update_heavy {
        return StrategySpec::full_replication();
    }
    if req.update_heavy {
        // §6.4 rule of thumb: small fraction (t/h < 1/n) favors Fixed-x.
        if req.t * req.n < req.h {
            let cushion = (req.t / 5).max(2);
            return StrategySpec::fixed(req.t + cushion);
        }
        return StrategySpec::hash(adaptive_y(req.t, req.n, req.h));
    }
    if req.fairness_required || req.complete_coverage {
        return StrategySpec::round_robin(adaptive_y(req.t, req.n, req.h));
    }
    if let Some(cap) = req.fixed_server_capacity {
        return StrategySpec::random_server(cap);
    }
    StrategySpec::round_robin(adaptive_y(req.t, req.n, req.h))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape() {
        let table = star_table();
        assert_eq!(table.len(), 4);
        for (_, cells) in &table {
            assert_eq!(cells.len(), 9);
        }
    }

    #[test]
    fn table2_spot_checks_match_paper() {
        // "no strategy is the best in all situations"
        let best_everywhere = TABLE2_ROWS
            .iter()
            .any(|&k| Dimension::ALL.iter().all(|&d| rating(k, d).unwrap().count() == 4));
        assert!(!best_everywhere);
        // Round-y: zero unfairness in both regimes.
        assert_eq!(
            rating(StrategyKind::RoundRobin, Dimension::FairnessManyUpdates).unwrap().count(),
            4
        );
        // Round-y: update bottleneck.
        assert_eq!(
            rating(StrategyKind::RoundRobin, Dimension::UpdateOverheadSmallTarget).unwrap().count(),
            1
        );
        // Fixed-x: coverage is its weak spot.
        assert_eq!(rating(StrategyKind::Fixed, Dimension::Coverage).unwrap().count(), 1);
        // Hash-y: best update overhead at large targets.
        assert_eq!(
            rating(StrategyKind::Hash, Dimension::UpdateOverheadLargeTarget).unwrap().count(),
            4
        );
        // Full replication is not rated.
        assert_eq!(rating(StrategyKind::FullReplication, Dimension::Coverage), None);
    }

    #[test]
    fn update_heavy_small_fraction_picks_fixed_with_cushion() {
        // t=15 of h=400 on n=10: t/h = 0.0375 < 1/n = 0.1.
        let req = Requirements::new(10, 400, 15).update_heavy(true);
        match recommend(&req) {
            StrategySpec::Fixed { x } => assert!(x > 15, "cushion applied, got x={x}"),
            other => panic!("expected Fixed, got {other}"),
        }
    }

    #[test]
    fn update_heavy_large_fraction_picks_hash_adaptive_y() {
        // t=40 of h=100 on n=10: t/h = 0.4 >= 1/n.
        let req = Requirements::new(10, 100, 40).update_heavy(true);
        assert_eq!(recommend(&req), StrategySpec::hash(4));
    }

    #[test]
    fn fairness_picks_round_robin() {
        let req = Requirements::new(10, 100, 35).fairness_required(true);
        assert_eq!(recommend(&req), StrategySpec::round_robin(4));
    }

    #[test]
    fn unconstrained_fair_static_picks_full_replication() {
        let req =
            Requirements::new(10, 100, 35).fairness_required(true).storage_unconstrained(true);
        assert_eq!(recommend(&req), StrategySpec::full_replication());
    }

    #[test]
    fn capacity_cap_picks_random_server() {
        let req = Requirements::new(10, 1000, 10).fixed_server_capacity(64);
        assert_eq!(recommend(&req), StrategySpec::random_server(64));
    }

    #[test]
    fn recommendations_are_always_valid() {
        for n in [1usize, 2, 5, 10, 50] {
            for h in [1usize, 10, 100, 1000] {
                for t in [1usize, 5, 50] {
                    for update_heavy in [false, true] {
                        for fair in [false, true] {
                            let req = Requirements::new(n, h, t)
                                .update_heavy(update_heavy)
                                .fairness_required(fair);
                            let spec = recommend(&req);
                            assert!(
                                spec.validate(n).is_ok(),
                                "invalid recommendation {spec} for n={n} h={h} t={t}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stars_display() {
        assert_eq!(Stars::new(3).to_string(), "★★★");
        assert_eq!(format!("{}", Stars::new(1)), "★");
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn five_stars_rejected() {
        Stars::new(5);
    }
}
