//! The simulated cluster: `n` servers, one key, one placement strategy.
//!
//! [`Cluster`] wires `n` [`NodeEngine`]s (the strategy protocols of §3
//! and §5) onto the simulated network of `pls-net`. Every
//! `place`/`add`/`delete` is injected as a client request to the
//! operation's coordinator server and the network is then pumped to
//! quiescence, so after each call the placement is stable and observable
//! via [`Cluster::placement`].
//!
//! Lookups follow §3's client procedures: they are synchronous
//! request/reply probes against server stores, charged to the message
//! counter's lookup class (one processed message per contacted server).

use pls_net::{Endpoint, Envelope, MessageCounter, MsgClass, ServerId, SimNet};

use crate::engine::{NodeEngine, Outbound};
use crate::{
    ConfigError, DetRng, Entry, FailureSet, IndexedSet, LookupResult, Message, Placement,
    ServiceError, StrategySpec,
};

/// A partial lookup service instance: `n` servers managing the entries of
/// one key under a fixed [`StrategySpec`].
///
/// # Example
///
/// ```
/// use pls_core::{Cluster, StrategySpec};
///
/// let mut cluster = Cluster::new(10, StrategySpec::random_server(20), 7)?;
/// cluster.place((0..100u64).collect())?;
/// // Ask for 35 entries; the client merges probes until satisfied.
/// let result = cluster.partial_lookup(35)?;
/// assert!(result.is_satisfied(35));
/// assert!(result.servers_contacted() >= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster<V: Entry> {
    net: SimNet<Message<V>>,
    engines: Vec<NodeEngine<V>>,
    spec: StrategySpec,
    rng: DetRng,
    client_seq: u64,
    rr_mirrors: usize,
}

impl<V: Entry> Cluster<V> {
    /// Creates a cluster of `n` servers running `spec`, with all
    /// randomness derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the spec's parameter is invalid for `n`
    /// servers (see [`StrategySpec::validate`]).
    pub fn new(n: usize, spec: StrategySpec, seed: u64) -> Result<Self, ConfigError> {
        spec.validate(n)?;
        let engines = (0..n)
            .map(|i| NodeEngine::new(ServerId::new(i as u32), n, spec, seed))
            .collect::<Result<Vec<_>, _>>()?;
        let rng = DetRng::seed_from(seed ^ 0xC11E_27D5_EED5_EED5);
        Ok(Cluster { net: SimNet::new(n), engines, spec, rng, client_seq: 0, rr_mirrors: 1 })
    }

    /// Replicates the Round-Robin coordinator counters on servers
    /// `0..mirrors` (paper §5.4 footnote: "the centralized head and tail
    /// scheme can be generalized to one where several servers store
    /// copies to improve reliability"). Updates route to the first
    /// operational mirror; each counter change is propagated to the
    /// others.
    ///
    /// Call before any updates. A recovering mirror must come back via
    /// [`Cluster::recover_and_resync`] so it re-adopts the current
    /// counters (a plain [`Cluster::recover_server`] would serve stale
    /// ones). Note that entry *migration* (Fig. 11) still needs the head
    /// position's server alive; mirroring removes only the counter
    /// bottleneck.
    ///
    /// # Panics
    ///
    /// Panics unless the strategy is Round-Robin-y and
    /// `1 <= mirrors <= n`.
    pub fn set_rr_mirrors(&mut self, mirrors: usize) {
        assert!(
            matches!(self.spec, StrategySpec::RoundRobin { .. }),
            "coordinator mirroring applies to Round-Robin-y only"
        );
        for engine in &mut self.engines {
            engine.set_rr_mirrors(mirrors);
        }
        self.rr_mirrors = mirrors;
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.engines.len()
    }

    /// The strategy this cluster runs.
    pub fn spec(&self) -> StrategySpec {
        self.spec
    }

    /// The current failure set.
    pub fn failures(&self) -> &FailureSet {
        self.net.failures()
    }

    /// Message accounting (the paper's §6.4 cost model).
    pub fn counter(&self) -> &MessageCounter {
        self.net.counter()
    }

    /// Resets the message accounting; the placement is untouched. Used to
    /// scope measurement windows (e.g. count update overhead only, after
    /// the initial `place`).
    pub fn reset_counter(&mut self) {
        self.net.reset_counter();
    }

    /// Crashes a server: its mail is dropped and lookups skip it. State is
    /// retained for a later [`Cluster::recover_server`] (warm restart).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn fail_server(&mut self, s: ServerId) {
        self.net.fail(s);
    }

    /// Brings a crashed server back with the state it had when it failed.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn recover_server(&mut self, s: ServerId) {
        self.net.recover(s);
    }

    /// Brings a crashed server back and rebuilds its state from the
    /// operational peers, so it serves correctly even if updates ran
    /// while it was down.
    ///
    /// The paper does not specify recovery; this is the natural
    /// anti-entropy protocol per strategy: copy a donor's store for the
    /// identical-server strategies (full replication, Fixed-x), redraw a
    /// fresh random subset of the surviving coverage for RandomServer-x,
    /// re-derive the hash assignment for Hash-y, and re-fetch this
    /// server's round-robin positions from their other replica holders
    /// for Round-Robin-y. Recovery traffic is charged to the control
    /// message class, leaving the §6.4 update accounting untouched.
    ///
    /// Limitations, by construction: entries whose every replica sat on
    /// simultaneously-failed servers are gone and cannot be resynced
    /// (the coverage loss of §4.3/§4.4); a recovering Round-Robin
    /// coordinator recovers its counters from the surviving positions,
    /// so after a total wipeout of entries the tail restarts at the
    /// highest surviving position.
    ///
    /// # Errors
    ///
    /// [`ServiceError::AllServersFailed`] when there is no operational
    /// peer to resync from (the server still recovers with the state it
    /// crashed with).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn recover_and_resync(&mut self, s: ServerId) -> Result<(), ServiceError> {
        // Gather donor state *before* recovering `s`, so `s`'s own stale
        // store cannot leak into the rebuilt one.
        let donors: Vec<ServerId> = self.net.failures().operational().collect();
        self.net.recover(s);
        if donors.is_empty() {
            return Err(ServiceError::AllServersFailed);
        }

        let send = |net: &mut SimNet<Message<V>>, msg: Message<V>, from: ServerId| {
            net.send(Endpoint::Server(from), s, msg, MsgClass::Control).expect("send");
        };

        match self.spec {
            StrategySpec::FullReplication | StrategySpec::Fixed { .. } => {
                // Any donor is identical; copy its store wholesale.
                let donor = donors[0];
                let entries = self.engines[donor.index()].entries().to_vec();
                send(&mut self.net, Message::StoreSet { entries }, donor);
                // One probe of the donor.
                self.net.charge(MsgClass::Control, 1);
            }
            StrategySpec::RandomServer { x } => {
                // The surviving coverage is the best available estimate of
                // the entry set; redraw an x-subset from it.
                let mut union: IndexedSet<V> = IndexedSet::new();
                for &d in &donors {
                    union.extend(self.engines[d.index()].entries().iter().cloned());
                    self.net.charge(MsgClass::Control, 1);
                }
                let donor = donors[0];
                send(
                    &mut self.net,
                    Message::ChooseSubset { entries: union.as_slice().to_vec(), x },
                    donor,
                );
            }
            StrategySpec::Hash { .. } => {
                // Re-derive this server's share of the surviving coverage
                // from the shared hash family (any donor's engine knows
                // it).
                let mut union: IndexedSet<V> = IndexedSet::new();
                for &d in &donors {
                    union.extend(self.engines[d.index()].entries().iter().cloned());
                    self.net.charge(MsgClass::Control, 1);
                }
                send(&mut self.net, Message::Reset, donors[0]);
                for v in union.as_slice().to_vec() {
                    if self.engines[donors[0].index()].assigns_to(&v, s) {
                        send(&mut self.net, Message::Store { v }, donors[0]);
                    }
                }
            }
            StrategySpec::RoundRobin { y } => {
                // While server 0 (the coordinator) is down no round-robin
                // update can run at all, so the surviving position map and
                // any surviving counters are mutually consistent.
                let mut positions: std::collections::BTreeMap<u64, V> =
                    std::collections::BTreeMap::new();
                for &d in &donors {
                    for (pos, v) in self.engines[d.index()].rr_positions() {
                        positions.insert(pos, v.clone());
                    }
                    self.net.charge(MsgClass::Control, 1);
                }
                // Counter source preference: a surviving coordinator
                // mirror (authoritative — updates may have run while this
                // server was down), then this server's own pre-Reset
                // counters, then the position map.
                let donor_counters = donors
                    .iter()
                    .filter(|d| d.index() < self.rr_mirrors)
                    .find_map(|d| self.engines[d.index()].rr_counters());
                let own_counters = self.engines[s.index()].rr_counters();
                send(&mut self.net, Message::Reset, donors[0]);
                if s.index() < self.rr_mirrors {
                    let (head, tail) = donor_counters.or(own_counters).unwrap_or_else(|| {
                        match (positions.keys().next(), positions.keys().last()) {
                            (Some(&lo), Some(&hi)) => (lo, hi + 1),
                            _ => (0, 0),
                        }
                    });
                    send(&mut self.net, Message::RrSetCounters { head, tail }, donors[0]);
                }
                // This server's own positions: those whose replica group
                // contains s.
                let n = self.n();
                for (pos, v) in positions {
                    let base = ServerId::new((pos % n as u64) as u32);
                    let holds = (0..y).any(|k| base.wrapping_add(k, n) == s);
                    if holds {
                        send(&mut self.net, Message::RrStore { v, pos }, donors[0]);
                    }
                }
            }
        }
        self.pump();
        Ok(())
    }

    /// Snapshot of the current placement instance, for the metrics crate.
    pub fn placement(&self) -> Placement<V> {
        Placement::from_rows(self.engines.iter().map(|e| e.entries().to_vec()).collect())
    }

    /// Direct view of one server's stored entries (unspecified order).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn server_entries(&self, s: ServerId) -> &[V] {
        self.engines[s.index()].entries()
    }

    /// Direct access to one server's engine, for diagnostics and
    /// invariant checking.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn engine(&self, s: ServerId) -> &NodeEngine<V> {
        &self.engines[s.index()]
    }

    // ---------------------------------------------------------------
    // Service interface (§2)
    // ---------------------------------------------------------------

    /// `place(v_1 .. v_h)`: batch-specifies the entry set (§2). Any prior
    /// entries for the key are replaced.
    ///
    /// # Errors
    ///
    /// [`ServiceError::AllServersFailed`] when there is no operational
    /// server to coordinate the request.
    pub fn place(&mut self, entries: Vec<V>) -> Result<(), ServiceError> {
        let s = self.update_coordinator()?;
        self.inject(s, Message::PlaceReq { entries });
        self.pump();
        Ok(())
    }

    /// `add(v)`: incrementally inserts one entry (§5).
    ///
    /// # Errors
    ///
    /// [`ServiceError::AllServersFailed`] when no server is up;
    /// [`ServiceError::CoordinatorUnavailable`] for Round-Robin-y when the
    /// dedicated coordinator (server 0) is down.
    pub fn add(&mut self, v: V) -> Result<(), ServiceError> {
        let s = self.update_coordinator()?;
        self.inject(s, Message::AddReq { v });
        self.pump();
        Ok(())
    }

    /// `delete(v)`: incrementally removes one entry (§5).
    ///
    /// For Round-Robin-y, deleting an entry that is not in the system
    /// corrupts the round-robin sequence (the coordinator advances `head`
    /// unconditionally, as in the paper's Fig. 11 pseudo-code which
    /// assumes valid deletes).
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::add`].
    pub fn delete(&mut self, v: &V) -> Result<(), ServiceError> {
        let s = self.update_coordinator()?;
        self.inject(s, Message::DeleteReq { v: v.clone() });
        self.pump();
        Ok(())
    }

    /// `partial_lookup(t)`: retrieves at least `t` distinct entries when
    /// the surviving placement allows it (§2).
    ///
    /// The client procedure depends on the strategy (§3): one random
    /// server for full replication and Fixed-x; random probing with
    /// merging for RandomServer-x and Hash-y; a random start followed by a
    /// deterministic stride-`y` walk for Round-Robin-y, falling back to
    /// random probing when the walk hits a failed server.
    ///
    /// When merging probes gathers more than `t` distinct entries, the
    /// answer handed back is a uniformly random `t`-subset of the merge.
    /// This matches the fairness model of §4.5, where a fair strategy
    /// returns each entry with probability exactly `t/h` — without the
    /// trim, multi-server lookups would systematically over-deliver.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ZeroTarget`] if `t == 0`;
    /// [`ServiceError::AllServersFailed`] if no server is operational.
    /// Retrieving fewer than `t` entries is *not* an error — see
    /// [`LookupResult::is_satisfied`].
    pub fn partial_lookup(&mut self, t: usize) -> Result<LookupResult<V>, ServiceError> {
        if t == 0 {
            return Err(ServiceError::ZeroTarget);
        }
        if self.net.failures().operational_count() == 0 {
            return Err(ServiceError::AllServersFailed);
        }
        match self.spec {
            StrategySpec::FullReplication | StrategySpec::Fixed { .. } => self.lookup_single(t),
            StrategySpec::RandomServer { .. } | StrategySpec::Hash { .. } => {
                self.lookup_random_probe(t)
            }
            StrategySpec::RoundRobin { y } => self.lookup_stride(t, y),
        }
    }

    // ---------------------------------------------------------------
    // Client lookup procedures (§3)
    // ---------------------------------------------------------------

    /// One probe: ask server `s` for `t` random entries from its store
    /// (all of them when it has fewer). Charged as one processed lookup
    /// message.
    fn server_answer(&mut self, s: ServerId, t: usize) -> Vec<V> {
        self.net.charge(MsgClass::Lookup, 1);
        self.engines[s.index()].sample(t)
    }

    /// Trims a merged answer down to exactly `t` entries (uniformly at
    /// random) when probing over-delivered; see [`Cluster::partial_lookup`].
    fn trim_answer(&mut self, acc: IndexedSet<V>, t: usize) -> Vec<V> {
        if acc.len() > t {
            acc.sample(t, &mut self.rng)
        } else {
            acc.as_slice().to_vec()
        }
    }

    fn lookup_single(&mut self, t: usize) -> Result<LookupResult<V>, ServiceError> {
        let s = self
            .rng
            .random_operational_server(self.net.failures())
            .expect("operational server available");
        let entries = self.server_answer(s, t);
        Ok(LookupResult::new(entries, vec![s]))
    }

    fn lookup_random_probe(&mut self, t: usize) -> Result<LookupResult<V>, ServiceError> {
        let order = self.rng.shuffled_servers(self.n());
        let mut acc: IndexedSet<V> = IndexedSet::new();
        let mut contacted = Vec::new();
        for s in order {
            if self.net.failures().is_failed(s) {
                continue;
            }
            let answer = self.server_answer(s, t);
            contacted.push(s);
            acc.extend(answer);
            if acc.len() >= t {
                break;
            }
        }
        let entries = self.trim_answer(acc, t);
        Ok(LookupResult::new(entries, contacted))
    }

    fn lookup_stride(&mut self, t: usize, y: usize) -> Result<LookupResult<V>, ServiceError> {
        let n = self.n();
        let start = self
            .rng
            .random_operational_server(self.net.failures())
            .expect("operational server available");
        let mut visited = vec![false; n];
        let mut acc: IndexedSet<V> = IndexedSet::new();
        let mut contacted = Vec::new();

        // Phase 1: the deterministic stride walk start, start+y, start+2y,
        // … — consecutive contacts share no entries, so each one adds h/n
        // fresh entries. Abandoned on the first failed server (the paper
        // switches to random probing) or when the walk cycles.
        let mut cur = start;
        while !visited[cur.index()] && acc.len() < t {
            visited[cur.index()] = true;
            if self.net.failures().is_failed(cur) {
                break;
            }
            let answer = self.server_answer(cur, t);
            contacted.push(cur);
            acc.extend(answer);
            cur = cur.wrapping_add(y, n);
        }

        // Phase 2: random probing over whatever operational servers the
        // walk did not reach.
        if acc.len() < t {
            let mut rest: Vec<ServerId> = (0..n as u32)
                .map(ServerId::new)
                .filter(|s| !visited[s.index()] && !self.net.failures().is_failed(*s))
                .collect();
            self.rng.shuffle(&mut rest);
            for s in rest {
                let answer = self.server_answer(s, t);
                contacted.push(s);
                acc.extend(answer);
                if acc.len() >= t {
                    break;
                }
            }
        }

        let entries = self.trim_answer(acc, t);
        Ok(LookupResult::new(entries, contacted))
    }

    // ---------------------------------------------------------------
    // Protocol plumbing
    // ---------------------------------------------------------------

    /// The server a client sends an update request to: server 0 for
    /// Round-Robin (the dedicated counter holder, §5.4), a random
    /// operational server otherwise.
    fn update_coordinator(&mut self) -> Result<ServerId, ServiceError> {
        if self.net.failures().operational_count() == 0 {
            return Err(ServiceError::AllServersFailed);
        }
        match self.spec {
            StrategySpec::RoundRobin { .. } => (0..self.rr_mirrors)
                .map(|i| ServerId::new(i as u32))
                .find(|s| !self.net.failures().is_failed(*s))
                .ok_or(ServiceError::CoordinatorUnavailable),
            _ => Ok(self
                .rng
                .random_operational_server(self.net.failures())
                .expect("operational server available")),
        }
    }

    fn inject(&mut self, to: ServerId, msg: Message<V>) {
        let client = Endpoint::client(self.client_seq);
        self.client_seq += 1;
        self.net.send(client, to, msg, MsgClass::Update).expect("destination in range");
    }

    /// Delivers messages until quiescent, running the server engines.
    fn pump(&mut self) {
        while let Some(env) = self.net.pop_next() {
            self.dispatch(env);
        }
    }

    fn dispatch(&mut self, env: Envelope<Message<V>>) {
        let me = env.to;
        let outs = self.engines[me.index()].handle(env.from, env.msg);
        let from = Endpoint::Server(me);
        for out in outs {
            match out {
                Outbound::To(dest, msg) => {
                    self.net.send(from, dest, msg, MsgClass::Update).expect("destination in range");
                }
                Outbound::Broadcast(msg) => {
                    self.net.broadcast(from, msg, MsgClass::Update).expect("broadcast");
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Introspection for tests and metrics
    // ---------------------------------------------------------------

    /// Round-robin coordinator counters `(head, tail)`, if this cluster
    /// runs Round-Robin-y — read from the first *operational* mirror.
    /// Exposed for tests and diagnostics.
    pub fn rr_counters(&self) -> Option<(u64, u64)> {
        (0..self.rr_mirrors)
            .map(|i| ServerId::new(i as u32))
            .find(|s| !self.net.failures().is_failed(*s))
            .and_then(|s| self.engines[s.index()].rr_counters())
            .or_else(|| self.engines[0].rr_counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ids(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    // ---------------- static placement (§3) ----------------

    #[test]
    fn full_replication_places_everything_everywhere() {
        let mut c = Cluster::new(4, StrategySpec::full_replication(), 1).unwrap();
        c.place(ids(10)).unwrap();
        let p = c.placement();
        assert_eq!(p.storage_used(), 40);
        for (_, row) in p.iter() {
            assert_eq!(row.len(), 10);
        }
    }

    #[test]
    fn fixed_places_same_prefix_everywhere() {
        let mut c = Cluster::new(5, StrategySpec::fixed(3), 1).unwrap();
        c.place(ids(10)).unwrap();
        let p = c.placement();
        assert_eq!(p.storage_used(), 15);
        for (_, row) in p.iter() {
            let set: HashSet<_> = row.iter().copied().collect();
            assert_eq!(set, HashSet::from([0, 1, 2]));
        }
    }

    #[test]
    fn fixed_with_fewer_entries_than_x_keeps_all() {
        let mut c = Cluster::new(3, StrategySpec::fixed(10), 1).unwrap();
        c.place(ids(4)).unwrap();
        assert_eq!(c.placement().storage_used(), 12);
    }

    #[test]
    fn random_server_places_x_per_server() {
        let mut c = Cluster::new(10, StrategySpec::random_server(20), 2).unwrap();
        c.place(ids(100)).unwrap();
        let p = c.placement();
        assert_eq!(p.storage_used(), 200);
        for (_, row) in p.iter() {
            assert_eq!(row.len(), 20);
            for v in row {
                assert!(*v < 100);
            }
        }
        // Servers chose independently: with overwhelming probability not
        // all rows are identical.
        let first: HashSet<_> = p.server_entries(ServerId::new(0)).iter().copied().collect();
        let second: HashSet<_> = p.server_entries(ServerId::new(1)).iter().copied().collect();
        assert_ne!(first, second);
    }

    #[test]
    fn round_robin_places_y_consecutive_copies() {
        let n = 10;
        let y = 2;
        let mut c = Cluster::new(n, StrategySpec::round_robin(y), 3).unwrap();
        c.place(ids(100)).unwrap();
        let p = c.placement();
        assert_eq!(p.storage_used(), 200);
        // Entry i lives exactly on servers (i mod n) and (i+1 mod n).
        for v in 0..100u64 {
            let holders: Vec<usize> = (0..n)
                .filter(|&s| p.server_entries(ServerId::new(s as u32)).contains(&v))
                .collect();
            let base = (v % n as u64) as usize;
            let mut expected = vec![base, (base + 1) % n];
            expected.sort_unstable();
            assert_eq!(holders, expected, "entry {v}");
        }
        assert_eq!(c.rr_counters(), Some((0, 100)));
    }

    #[test]
    fn hash_places_per_family_assignment() {
        let mut c = Cluster::new(10, StrategySpec::hash(2), 4).unwrap();
        c.place(ids(100)).unwrap();
        let p = c.placement();
        // Each entry stored 1..=2 times (collisions collapse).
        for v in 0..100u64 {
            let copies = p.replica_count(&v);
            assert!((1..=2).contains(&copies), "entry {v} has {copies} copies");
        }
        // Expected storage h*n*(1-(1-1/n)^y) = 100*10*(1-0.9^2) = 190.
        let used = p.storage_used();
        assert!((170..=200).contains(&used), "storage {used}");
    }

    #[test]
    fn replace_semantics_of_place() {
        for spec in [
            StrategySpec::full_replication(),
            StrategySpec::fixed(5),
            StrategySpec::random_server(5),
            StrategySpec::round_robin(2),
            StrategySpec::hash(2),
        ] {
            let mut c = Cluster::new(4, spec, 9).unwrap();
            c.place(ids(20)).unwrap();
            c.place(vec![1000, 1001, 1002]).unwrap();
            let p = c.placement();
            for (_, row) in p.iter() {
                for v in row {
                    assert!(*v >= 1000, "{spec}: stale entry {v} survived re-place");
                }
            }
        }
    }

    // ---------------- lookups (§3, §4.2) ----------------

    #[test]
    fn full_replication_lookup_costs_one() {
        let mut c = Cluster::new(10, StrategySpec::full_replication(), 5).unwrap();
        c.place(ids(100)).unwrap();
        for t in [1, 10, 50, 100] {
            let r = c.partial_lookup(t).unwrap();
            assert_eq!(r.servers_contacted(), 1);
            assert!(r.is_satisfied(t));
        }
    }

    #[test]
    fn fixed_lookup_within_x_costs_one() {
        let mut c = Cluster::new(10, StrategySpec::fixed(20), 5).unwrap();
        c.place(ids(100)).unwrap();
        let r = c.partial_lookup(20).unwrap();
        assert_eq!(r.servers_contacted(), 1);
        assert!(r.is_satisfied(20));
        // Beyond x the lookup is unsatisfiable ("undefined" in the paper).
        let r = c.partial_lookup(21).unwrap();
        assert!(!r.is_satisfied(21));
    }

    #[test]
    fn round_robin_lookup_cost_is_ceil_tn_over_yh() {
        let mut c = Cluster::new(10, StrategySpec::round_robin(2), 6).unwrap();
        c.place(ids(100)).unwrap();
        // Each server stores y*h/n = 20; consecutive stride contacts are
        // disjoint, so cost = ceil(t/20).
        for (t, want) in [(10, 1), (20, 1), (21, 2), (40, 2), (41, 3), (50, 3)] {
            for _ in 0..20 {
                let r = c.partial_lookup(t).unwrap();
                assert!(r.is_satisfied(t), "t={t}");
                assert_eq!(r.servers_contacted(), want, "t={t}");
            }
        }
    }

    #[test]
    fn merged_lookups_trim_to_exactly_t() {
        let mut c = Cluster::new(10, StrategySpec::round_robin(2), 6).unwrap();
        c.place(ids(100)).unwrap();
        for _ in 0..20 {
            let r = c.partial_lookup(30).unwrap();
            assert_eq!(r.entries().len(), 30);
        }
    }

    #[test]
    fn random_server_lookup_merges_until_satisfied() {
        let mut c = Cluster::new(10, StrategySpec::random_server(20), 7).unwrap();
        c.place(ids(100)).unwrap();
        for _ in 0..50 {
            let r = c.partial_lookup(35).unwrap();
            assert!(r.is_satisfied(35));
            assert!(r.servers_contacted() >= 2);
            // Answers are distinct entries from the placed set.
            for v in r.entries() {
                assert!(*v < 100);
            }
        }
    }

    #[test]
    fn hash_lookup_merges_until_satisfied() {
        let mut c = Cluster::new(10, StrategySpec::hash(2), 8).unwrap();
        c.place(ids(100)).unwrap();
        for _ in 0..50 {
            let r = c.partial_lookup(25).unwrap();
            assert!(r.is_satisfied(25));
        }
    }

    #[test]
    fn lookup_zero_target_errors() {
        let mut c = Cluster::<u64>::new(3, StrategySpec::full_replication(), 1).unwrap();
        assert_eq!(c.partial_lookup(0).unwrap_err(), ServiceError::ZeroTarget);
    }

    #[test]
    fn lookup_with_all_servers_failed_errors() {
        let mut c = Cluster::new(3, StrategySpec::full_replication(), 1).unwrap();
        c.place(ids(5)).unwrap();
        for i in 0..3 {
            c.fail_server(ServerId::new(i));
        }
        assert_eq!(c.partial_lookup(1).unwrap_err(), ServiceError::AllServersFailed);
    }

    #[test]
    fn lookup_skips_failed_servers() {
        let mut c = Cluster::new(10, StrategySpec::random_server(20), 9).unwrap();
        c.place(ids(100)).unwrap();
        for i in 0..5 {
            c.fail_server(ServerId::new(i));
        }
        for _ in 0..50 {
            let r = c.partial_lookup(30).unwrap();
            for s in r.contacted() {
                assert!(s.index() >= 5, "contacted failed server {s}");
            }
            assert!(r.is_satisfied(30));
        }
    }

    #[test]
    fn round_robin_lookup_survives_failures_via_random_fallback() {
        let mut c = Cluster::new(10, StrategySpec::round_robin(2), 10).unwrap();
        c.place(ids(100)).unwrap();
        c.fail_server(ServerId::new(3));
        c.fail_server(ServerId::new(4));
        for _ in 0..100 {
            let r = c.partial_lookup(40).unwrap();
            assert!(r.is_satisfied(40));
            for s in r.contacted() {
                assert!(!c.failures().is_failed(*s));
            }
        }
    }

    // ---------------- dynamic updates (§5) ----------------

    #[test]
    fn full_replication_add_delete() {
        let mut c = Cluster::new(3, StrategySpec::full_replication(), 11).unwrap();
        c.place(ids(5)).unwrap();
        c.add(100).unwrap();
        assert_eq!(c.placement().replica_count(&100), 3);
        c.delete(&100).unwrap();
        assert_eq!(c.placement().replica_count(&100), 0);
        assert_eq!(c.placement().storage_used(), 15);
    }

    #[test]
    fn fixed_add_ignored_when_full() {
        let mut c = Cluster::new(4, StrategySpec::fixed(5), 12).unwrap();
        c.place(ids(5)).unwrap();
        let before = c.counter().update_messages();
        c.add(99).unwrap();
        // Coordinator processed the request (cost 1) but did not broadcast.
        assert_eq!(c.counter().update_messages() - before, 1);
        assert_eq!(c.placement().replica_count(&99), 0);
    }

    #[test]
    fn fixed_delete_creates_deficit_then_add_refills() {
        let mut c = Cluster::new(4, StrategySpec::fixed(5), 13).unwrap();
        c.place(ids(5)).unwrap();
        c.delete(&0).unwrap();
        for (_, row) in c.placement().iter() {
            assert_eq!(row.len(), 4);
        }
        c.add(99).unwrap();
        for (_, row) in c.placement().iter() {
            assert_eq!(row.len(), 5);
            assert!(row.contains(&99));
        }
    }

    #[test]
    fn fixed_delete_of_untracked_entry_is_cheap() {
        let mut c = Cluster::new(4, StrategySpec::fixed(3), 14).unwrap();
        c.place(ids(10)).unwrap(); // servers keep 0,1,2
        let before = c.counter().update_messages();
        c.delete(&7).unwrap(); // not among the stored x
        assert_eq!(c.counter().update_messages() - before, 1);
    }

    #[test]
    fn random_server_add_keeps_x_entries() {
        let mut c = Cluster::new(10, StrategySpec::random_server(20), 15).unwrap();
        c.place(ids(100)).unwrap();
        for v in 100..150u64 {
            c.add(v).unwrap();
        }
        for (_, row) in c.placement().iter() {
            assert_eq!(row.len(), 20);
        }
        // Newcomers actually land somewhere (reservoir admits ~x/h).
        let p = c.placement();
        let newcomers = (100..150u64).filter(|v| p.replica_count(v) > 0).count();
        assert!(newcomers > 0);
    }

    #[test]
    fn random_server_delete_decrements() {
        let mut c = Cluster::new(10, StrategySpec::random_server(20), 16).unwrap();
        c.place(ids(100)).unwrap();
        c.delete(&0).unwrap();
        assert_eq!(c.placement().replica_count(&0), 0);
        for (_, row) in c.placement().iter() {
            assert!(row.len() >= 19);
        }
    }

    #[test]
    fn reservoir_admission_rate_is_x_over_h() {
        // After placing h0=100 entries with x=20 and adding one more, each
        // server keeps the newcomer with probability 20/101.
        let trials = 2000;
        let mut hits = 0usize;
        for seed in 0..trials {
            let mut c = Cluster::new(1, StrategySpec::random_server(20), seed).unwrap();
            c.place(ids(100)).unwrap();
            c.add(555).unwrap();
            if c.placement().replica_count(&555) > 0 {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        let expected = 20.0 / 101.0;
        assert!((rate - expected).abs() < 0.03, "rate {rate} vs {expected}");
    }

    #[test]
    fn hash_add_delete_touch_only_assigned_servers() {
        let mut c = Cluster::new(10, StrategySpec::hash(3), 17).unwrap();
        c.place(ids(50)).unwrap();
        let before = c.counter().update_messages();
        c.add(999).unwrap();
        let cost = c.counter().update_messages() - before;
        // 1 client request + at most 3 stores.
        assert!((2..=4).contains(&cost), "add cost {cost}");
        assert!(c.placement().replica_count(&999) >= 1);
        let before = c.counter().update_messages();
        c.delete(&999).unwrap();
        let cost = c.counter().update_messages() - before;
        assert!((2..=4).contains(&cost), "delete cost {cost}");
        assert_eq!(c.placement().replica_count(&999), 0);
    }

    // ---------------- round-robin dynamics (Fig. 10/11) ----------------

    /// Checks the key invariant of the Fig. 11 protocol: live round-robin
    /// positions stay contiguous in [head, tail), every position holds
    /// exactly one entry replicated on exactly y consecutive servers.
    fn assert_rr_consistent(c: &Cluster<u64>, y: usize, expected_live: &HashSet<u64>) {
        let (head, tail) = c.rr_counters().unwrap();
        assert_eq!((tail - head) as usize, expected_live.len(), "live position count");
        let n = c.n();
        let position_entry = |s: ServerId, pos: u64| -> Option<u64> {
            c.engine(s).rr_positions().find(|(p, _)| *p == pos).map(|(_, v)| *v)
        };
        let mut seen = HashSet::new();
        for pos in head..tail {
            let base = ServerId::new((pos % n as u64) as u32);
            let holder_entries: Vec<u64> = (0..y)
                .map(|k| {
                    let s = base.wrapping_add(k, n);
                    let v = position_entry(s, pos);
                    assert!(v.is_some(), "position {pos} missing on {s}");
                    let v = v.unwrap();
                    assert!(c.server_entries(s).contains(&v));
                    v
                })
                .collect();
            // All y copies agree.
            assert!(holder_entries.windows(2).all(|w| w[0] == w[1]), "position {pos} disagrees");
            seen.insert(holder_entries[0]);
        }
        assert_eq!(&seen, expected_live, "live entry set");
        // No stray positions outside [head, tail).
        for i in 0..n {
            for (pos, _) in c.engine(ServerId::new(i as u32)).rr_positions() {
                assert!(pos >= head && pos < tail, "stray position {pos}");
            }
        }
    }

    #[test]
    fn round_robin_add_appends_at_tail() {
        let mut c = Cluster::new(5, StrategySpec::round_robin(2), 18).unwrap();
        c.place(ids(7)).unwrap();
        c.add(100).unwrap();
        c.add(101).unwrap();
        let live: HashSet<u64> = (0..7u64).chain([100, 101]).collect();
        assert_rr_consistent(&c, 2, &live);
        assert_eq!(c.rr_counters(), Some((0, 9)));
    }

    #[test]
    fn round_robin_delete_plugs_hole_with_head_entry() {
        // The Figure 10 scenario: 5 entries on 4 servers, y=2; deleting
        // entry at position 2 migrates the head entry into its slot.
        let mut c = Cluster::new(4, StrategySpec::round_robin(2), 19).unwrap();
        c.place(vec![1u64, 2, 3, 4, 5]).unwrap();
        c.delete(&3).unwrap(); // entry "3" sits at position 2
        let live: HashSet<u64> = [1, 2, 4, 5].into_iter().collect();
        assert_rr_consistent(&c, 2, &live);
        let (head, tail) = c.rr_counters().unwrap();
        assert_eq!((head, tail), (1, 5));
        // Entry 1 (the old head) now occupies position 2, replicated on
        // servers 2 and 3.
        let holds = |s: u32, pos: u64, v: u64| {
            c.engine(ServerId::new(s)).rr_positions().any(|(p, e)| p == pos && *e == v)
        };
        assert!(holds(2, 2, 1));
        assert!(holds(3, 2, 1));
        // ...and no longer on its original servers 0 and 1.
        assert!(!c.server_entries(ServerId::new(0)).contains(&1));
        assert!(!c.server_entries(ServerId::new(1)).contains(&1));
    }

    #[test]
    fn round_robin_delete_of_head_entry_just_advances() {
        let mut c = Cluster::new(4, StrategySpec::round_robin(2), 20).unwrap();
        c.place(vec![1u64, 2, 3, 4, 5]).unwrap();
        c.delete(&1).unwrap(); // head entry itself
        let live: HashSet<u64> = [2, 3, 4, 5].into_iter().collect();
        assert_rr_consistent(&c, 2, &live);
        assert_eq!(c.rr_counters(), Some((1, 5)));
    }

    #[test]
    fn round_robin_survives_long_update_churn() {
        let mut c = Cluster::new(7, StrategySpec::round_robin(3), 21).unwrap();
        c.place(ids(30)).unwrap();
        let mut live: HashSet<u64> = (0..30).collect();
        let mut next = 30u64;
        let mut rng = DetRng::seed_from(99);
        for step in 0..400 {
            if rng.coin_flip(0.5) || live.is_empty() {
                c.add(next).unwrap();
                live.insert(next);
                next += 1;
            } else {
                let victims: Vec<u64> = live.iter().copied().collect();
                let victim = victims[rng.below(victims.len())];
                c.delete(&victim).unwrap();
                live.remove(&victim);
            }
            if step % 50 == 0 {
                assert_rr_consistent(&c, 3, &live);
            }
        }
        assert_rr_consistent(&c, 3, &live);
    }

    #[test]
    fn round_robin_delete_everything_then_rebuild() {
        let mut c = Cluster::new(4, StrategySpec::round_robin(2), 22).unwrap();
        c.place(ids(6)).unwrap();
        for v in 0..6u64 {
            c.delete(&v).unwrap();
        }
        assert_rr_consistent(&c, 2, &HashSet::new());
        let (head, tail) = c.rr_counters().unwrap();
        assert_eq!(head, tail);
        c.add(50).unwrap();
        c.add(51).unwrap();
        assert_rr_consistent(&c, 2, &[50, 51].into_iter().collect());
    }

    #[test]
    fn round_robin_update_with_failed_coordinator_errors() {
        let mut c = Cluster::new(4, StrategySpec::round_robin(2), 23).unwrap();
        c.place(ids(6)).unwrap();
        c.fail_server(ServerId::new(0));
        assert_eq!(c.add(9).unwrap_err(), ServiceError::CoordinatorUnavailable);
        assert_eq!(c.delete(&2).unwrap_err(), ServiceError::CoordinatorUnavailable);
        // Lookups still work against the surviving servers.
        let r = c.partial_lookup(4).unwrap();
        assert!(r.is_satisfied(4));
    }

    // ---------------- message accounting (§6.4) ----------------

    #[test]
    fn fixed_update_cost_model() {
        // Fixed-x: 1 message when no broadcast, 1 + n when broadcasting.
        let n = 10;
        let mut c = Cluster::new(n, StrategySpec::fixed(5), 24).unwrap();
        c.place(ids(5)).unwrap();
        c.reset_counter();
        c.add(99).unwrap(); // full: no broadcast
        assert_eq!(c.counter().update_messages(), 1);
        c.reset_counter();
        c.delete(&0).unwrap(); // stored: broadcast
        assert_eq!(c.counter().update_messages(), 1 + n as u64);
    }

    #[test]
    fn random_server_updates_always_broadcast() {
        let n = 10;
        let mut c = Cluster::new(n, StrategySpec::random_server(5), 25).unwrap();
        c.place(ids(50)).unwrap();
        c.reset_counter();
        c.add(99).unwrap();
        assert_eq!(c.counter().update_messages(), 1 + n as u64);
        c.reset_counter();
        c.delete(&0).unwrap();
        assert_eq!(c.counter().update_messages(), 1 + n as u64);
    }

    #[test]
    fn lookup_messages_counted_separately() {
        let mut c = Cluster::new(5, StrategySpec::full_replication(), 26).unwrap();
        c.place(ids(10)).unwrap();
        let updates = c.counter().update_messages();
        c.partial_lookup(3).unwrap();
        c.partial_lookup(3).unwrap();
        assert_eq!(c.counter().lookup_messages(), 2);
        assert_eq!(c.counter().update_messages(), updates);
    }

    // ---------------- failure / recovery ----------------

    #[test]
    fn resync_full_replication_catches_up_missed_updates() {
        let mut c = Cluster::new(4, StrategySpec::full_replication(), 50).unwrap();
        c.place(ids(10)).unwrap();
        let victim = ServerId::new(2);
        c.fail_server(victim);
        c.add(100).unwrap();
        c.delete(&0).unwrap();
        c.recover_and_resync(victim).unwrap();
        let expected: HashSet<u64> = (1..10u64).chain([100]).collect();
        let got: HashSet<u64> = c.server_entries(victim).iter().copied().collect();
        assert_eq!(got, expected);
        // Recovery traffic is control-class, not update-class.
        assert!(c.counter().control_messages() > 0);
    }

    #[test]
    fn resync_fixed_matches_peers() {
        let mut c = Cluster::new(4, StrategySpec::fixed(5), 51).unwrap();
        c.place(ids(5)).unwrap();
        let victim = ServerId::new(1);
        c.fail_server(victim);
        c.delete(&2).unwrap();
        c.add(77).unwrap();
        c.recover_and_resync(victim).unwrap();
        let donor: HashSet<u64> = c.server_entries(ServerId::new(0)).iter().copied().collect();
        let got: HashSet<u64> = c.server_entries(victim).iter().copied().collect();
        assert_eq!(got, donor);
        assert!(got.contains(&77) && !got.contains(&2));
    }

    #[test]
    fn resync_random_server_rebuilds_full_subset() {
        let mut c = Cluster::new(10, StrategySpec::random_server(20), 52).unwrap();
        c.place(ids(100)).unwrap();
        let victim = ServerId::new(4);
        c.fail_server(victim);
        for v in 100..120u64 {
            c.add(v).unwrap();
        }
        c.recover_and_resync(victim).unwrap();
        assert_eq!(c.server_entries(victim).len(), 20);
        // The rebuilt subset only holds entries that other servers still
        // cover (all entries are live here).
        let coverage: HashSet<u64> = c.placement().distinct_entries().into_iter().collect();
        for v in c.server_entries(victim) {
            assert!(coverage.contains(v));
        }
    }

    #[test]
    fn resync_hash_restores_assignment() {
        let mut c = Cluster::new(10, StrategySpec::hash(2), 53).unwrap();
        c.place(ids(100)).unwrap();
        let victim = ServerId::new(7);
        let before: HashSet<u64> = c.server_entries(victim).iter().copied().collect();
        c.fail_server(victim);
        c.recover_and_resync(victim).unwrap();
        let after: HashSet<u64> = c.server_entries(victim).iter().copied().collect();
        // No updates ran while down: the rebuilt share is exactly the
        // hash assignment it held before, re-derived from peers — except
        // entries that were single-copy on the victim (unreachable while
        // it was down).
        for v in &after {
            assert!(before.contains(v));
        }
        // Entries with a second copy elsewhere all come back.
        let survivors: HashSet<u64> = before
            .iter()
            .filter(|v| {
                (0..10).filter(|i| c.server_entries(ServerId::new(*i)).contains(v)).count() >= 1
                    && after.contains(*v)
            })
            .copied()
            .collect();
        assert!(!survivors.is_empty());
    }

    #[test]
    fn resync_round_robin_restores_positions_and_counters() {
        let mut c = Cluster::new(5, StrategySpec::round_robin(2), 54).unwrap();
        c.place(ids(20)).unwrap();
        let victim = ServerId::new(3);
        c.fail_server(victim);
        // Coordinator (server 0) is up, so updates proceed while the
        // victim is down; its copies go stale.
        c.add(100).unwrap();
        c.delete(&0).unwrap();
        c.delete(&5).unwrap();
        c.recover_and_resync(victim).unwrap();
        // Full consistency: every live position is replicated on exactly
        // its y consecutive servers, including the recovered one.
        let (head, tail) = c.rr_counters().unwrap();
        for pos in head..tail {
            let base = ServerId::new((pos % 5) as u32);
            for k in 0..2 {
                let holder = base.wrapping_add(k, 5);
                assert!(
                    c.engine(holder).rr_positions().any(|(p, _)| p == pos),
                    "position {pos} missing on {holder} after resync"
                );
            }
        }
        // And lookups satisfy full coverage again.
        let live_count = (tail - head) as usize;
        let r = c.partial_lookup(live_count).unwrap();
        assert!(r.is_satisfied(live_count));
    }

    #[test]
    fn resync_recovered_coordinator_keeps_counters() {
        let mut c = Cluster::new(4, StrategySpec::round_robin(2), 55).unwrap();
        c.place(ids(8)).unwrap();
        c.delete(&0).unwrap();
        let (head, tail) = c.rr_counters().unwrap();
        c.fail_server(ServerId::new(0));
        // No RR updates possible while the coordinator is down.
        assert_eq!(c.add(99).unwrap_err(), ServiceError::CoordinatorUnavailable);
        c.recover_and_resync(ServerId::new(0)).unwrap();
        assert_eq!(c.rr_counters(), Some((head, tail)));
        // Updates flow again.
        c.add(99).unwrap();
        assert_eq!(c.rr_counters(), Some((head, tail + 1)));
    }

    // ---------------- coordinator mirroring (§5.4 footnote) ----------------

    #[test]
    fn mirrored_counters_stay_in_sync_under_churn() {
        let mut c = Cluster::new(5, StrategySpec::round_robin(2), 70).unwrap();
        c.set_rr_mirrors(2);
        c.place(ids(10)).unwrap();
        let mut live: HashSet<u64> = (0..10).collect();
        let mut next = 10u64;
        let mut rng = DetRng::seed_from(71);
        for _ in 0..100 {
            if rng.coin_flip(0.5) || live.is_empty() {
                c.add(next).unwrap();
                live.insert(next);
                next += 1;
            } else {
                let victims: Vec<u64> = live.iter().copied().collect();
                let v = victims[rng.below(victims.len())];
                c.delete(&v).unwrap();
                live.remove(&v);
            }
            assert_eq!(
                c.engine(ServerId::new(0)).rr_counters(),
                c.engine(ServerId::new(1)).rr_counters(),
                "mirrors diverged"
            );
        }
        assert_rr_consistent(&c, 2, &live);
    }

    #[test]
    fn coordinator_failover_to_mirror() {
        let mut c = Cluster::new(5, StrategySpec::round_robin(2), 72).unwrap();
        c.set_rr_mirrors(2);
        c.place(ids(10)).unwrap();
        c.fail_server(ServerId::new(0));
        // Updates now route through mirror 1 instead of erroring.
        c.add(100).unwrap();
        assert_eq!(c.rr_counters(), Some((0, 11)));
        // Deletes work too, as long as the head-position server is up
        // (head 0 sits on servers 0 and 1; server 1 survives and serves
        // the migration).
        c.delete(&5).unwrap();
        let (head, tail) = c.rr_counters().unwrap();
        assert_eq!((head, tail), (1, 11));
        // The recovered ex-primary resyncs and adopts the new counters.
        c.recover_and_resync(ServerId::new(0)).unwrap();
        assert_eq!(c.engine(ServerId::new(0)).rr_counters(), Some((1, 11)));
        c.add(101).unwrap();
        assert_eq!(c.rr_counters(), Some((1, 12)));
        assert_eq!(
            c.engine(ServerId::new(0)).rr_counters(),
            c.engine(ServerId::new(1)).rr_counters()
        );
    }

    #[test]
    fn without_mirrors_coordinator_is_still_a_spof() {
        let mut c = Cluster::new(5, StrategySpec::round_robin(2), 73).unwrap();
        c.place(ids(10)).unwrap();
        c.fail_server(ServerId::new(0));
        assert_eq!(c.add(99).unwrap_err(), ServiceError::CoordinatorUnavailable);
    }

    #[test]
    #[should_panic(expected = "Round-Robin-y only")]
    fn mirroring_rejected_for_other_strategies() {
        let mut c: Cluster<u64> = Cluster::new(5, StrategySpec::hash(2), 74).unwrap();
        c.set_rr_mirrors(2);
    }

    #[test]
    fn resync_with_no_donors_errors() {
        let mut c = Cluster::new(2, StrategySpec::full_replication(), 56).unwrap();
        c.place(ids(4)).unwrap();
        c.fail_server(ServerId::new(0));
        c.fail_server(ServerId::new(1));
        assert_eq!(
            c.recover_and_resync(ServerId::new(0)).unwrap_err(),
            ServiceError::AllServersFailed
        );
        // The server still recovered (warm state).
        assert!(!c.failures().is_failed(ServerId::new(0)));
        let r = c.partial_lookup(4).unwrap();
        assert!(r.is_satisfied(4));
    }

    #[test]
    fn recovered_server_serves_again() {
        let mut c = Cluster::new(3, StrategySpec::full_replication(), 27).unwrap();
        c.place(ids(10)).unwrap();
        c.fail_server(ServerId::new(0));
        c.fail_server(ServerId::new(1));
        c.fail_server(ServerId::new(2));
        assert!(c.partial_lookup(1).is_err());
        c.recover_server(ServerId::new(1));
        let r = c.partial_lookup(5).unwrap();
        assert_eq!(r.contacted(), &[ServerId::new(1)]);
        assert!(r.is_satisfied(5));
    }

    #[test]
    fn updates_with_all_failed_error() {
        let mut c = Cluster::new(2, StrategySpec::full_replication(), 28).unwrap();
        c.fail_server(ServerId::new(0));
        c.fail_server(ServerId::new(1));
        assert_eq!(c.place(ids(3)).unwrap_err(), ServiceError::AllServersFailed);
        assert_eq!(c.add(1).unwrap_err(), ServiceError::AllServersFailed);
        assert_eq!(c.delete(&1).unwrap_err(), ServiceError::AllServersFailed);
    }

    #[test]
    fn determinism_same_seed_same_everything() {
        let run = |seed: u64| {
            let mut c = Cluster::new(10, StrategySpec::random_server(20), seed).unwrap();
            c.place(ids(100)).unwrap();
            let mut trace = Vec::new();
            for _ in 0..20 {
                let r = c.partial_lookup(35).unwrap();
                trace.push((r.entries().to_vec(), r.contacted().to_vec()));
            }
            (c.placement(), trace)
        };
        assert_eq!(run(42), run(42));
    }
}
