//! A multi-key partial lookup directory.
//!
//! The paper defines the service over many keys but studies one key at a
//! time, noting that "different strategies can be used to manage
//! different types of keys" (§2). [`Directory`] is that multi-key
//! service: `n` servers, each running one [`NodeEngine`] per key, with a
//! pluggable per-key strategy assignment — uniform, custom, or driven by
//! the [`advisor`](crate::advisor).
//!
//! Beyond the single-key [`Cluster`](crate::Cluster), the directory
//! tracks **per-server lookup load**, the quantity behind the paper's
//! hot-spot argument: partial lookup placements spread a popular key's
//! traffic over many servers, where key-partitioned services concentrate
//! it on one.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use pls_net::{Endpoint, ServerId};

use crate::engine::{NodeEngine, Outbound};
use crate::{
    ConfigError, DetRng, Entry, FailureSet, IndexedSet, LookupResult, Message, ServiceError,
    StrategySpec,
};

/// Key types for the directory: anything hashable and cloneable.
pub trait Key: Clone + Eq + Hash + std::fmt::Debug {}
impl<T: Clone + Eq + Hash + std::fmt::Debug> Key for T {}

/// How the directory picks a strategy for each key.
pub enum StrategyAssignment<K> {
    /// Every key uses the same strategy.
    Uniform(StrategySpec),
    /// A custom function from key to strategy (e.g. hot keys get
    /// Round-Robin, churny keys get Fixed-x).
    PerKey(Box<dyn Fn(&K) -> StrategySpec + Send + Sync>),
}

impl<K> std::fmt::Debug for StrategyAssignment<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyAssignment::Uniform(spec) => write!(f, "Uniform({spec})"),
            StrategyAssignment::PerKey(_) => write!(f, "PerKey(<fn>)"),
        }
    }
}

impl<K> StrategyAssignment<K> {
    fn spec_for(&self, key: &K) -> StrategySpec {
        match self {
            StrategyAssignment::Uniform(spec) => *spec,
            StrategyAssignment::PerKey(f) => f(key),
        }
    }
}

/// A multi-key partial lookup service on `n` simulated servers.
///
/// # Example
///
/// ```
/// use pls_core::directory::{Directory, StrategyAssignment};
/// use pls_core::StrategySpec;
///
/// let mut dir: Directory<&'static str, u64> = Directory::new(
///     10,
///     StrategyAssignment::Uniform(StrategySpec::round_robin(2)),
///     42,
/// )?;
/// dir.place("stairway", (0..50).collect())?;
/// dir.place("yesterday", (100..140).collect())?;
/// let hits = dir.partial_lookup(&"stairway", 5)?;
/// assert!(hits.is_satisfied(5));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Directory<K: Key, V: Entry> {
    n: usize,
    assignment: StrategyAssignment<K>,
    seed: u64,
    /// engines[key][server].
    engines: HashMap<K, Vec<NodeEngine<V>>>,
    failures: FailureSet,
    rng: DetRng,
    /// Lookup probes served, per server — the hot-spot metric.
    lookup_load: Vec<u64>,
    /// Update messages processed, per server.
    update_load: Vec<u64>,
}

impl<K: Key, V: Entry> Directory<K, V> {
    /// Creates an empty directory on `n` servers.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidParameter`] when `n` is zero. Per-key
    /// strategy specs are validated lazily when the key is first used.
    pub fn new(
        n: usize,
        assignment: StrategyAssignment<K>,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::InvalidParameter("server count n must be positive"));
        }
        Ok(Directory {
            n,
            assignment,
            seed,
            engines: HashMap::new(),
            failures: FailureSet::new(n),
            rng: DetRng::seed_from(seed ^ 0xD12E_C704),
            lookup_load: vec![0; n],
            update_load: vec![0; n],
        })
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Keys currently managed.
    pub fn key_count(&self) -> usize {
        self.engines.len()
    }

    /// The strategy a key is (or would be) managed under.
    pub fn spec_for(&self, key: &K) -> StrategySpec {
        self.assignment.spec_for(key)
    }

    /// The failure set.
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// Crashes a server (affects every key).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn fail_server(&mut self, s: ServerId) {
        self.failures.fail(s);
    }

    /// Recovers a server.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn recover_server(&mut self, s: ServerId) {
        self.failures.recover(s);
    }

    /// Lookup probes served per server so far (the hot-spot metric).
    pub fn lookup_load(&self) -> &[u64] {
        &self.lookup_load
    }

    /// Update messages processed per server so far.
    pub fn update_load(&self) -> &[u64] {
        &self.update_load
    }

    /// Resets the per-server load accounting.
    pub fn reset_load(&mut self) {
        self.lookup_load.iter_mut().for_each(|c| *c = 0);
        self.update_load.iter_mut().for_each(|c| *c = 0);
    }

    fn key_seed(&self, key: &K) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        self.seed ^ hasher.finish()
    }

    fn engines_for(&mut self, key: &K) -> Result<&mut Vec<NodeEngine<V>>, ConfigError> {
        if !self.engines.contains_key(key) {
            let spec = self.assignment.spec_for(key);
            let seed = self.key_seed(key);
            let engines = (0..self.n)
                .map(|i| NodeEngine::new(ServerId::new(i as u32), self.n, spec, seed))
                .collect::<Result<Vec<_>, _>>()?;
            self.engines.insert(key.clone(), engines);
        }
        Ok(self.engines.get_mut(key).expect("just inserted"))
    }

    /// Delivers a client message to a coordinator and drains the
    /// resulting fan-out, charging per-server update load. Messages to
    /// failed servers are dropped.
    fn drive(
        &mut self,
        key: &K,
        coordinator: ServerId,
        msg: Message<V>,
    ) -> Result<(), ServiceError> {
        let n = self.n;
        let failures = self.failures.clone();
        let mut load = std::mem::take(&mut self.update_load);
        {
            let engines = self.engines_for(key).map_err(|_| ServiceError::AllServersFailed)?;
            // (sender, destination, message) work queue.
            let mut queue: Vec<(Endpoint, ServerId, Message<V>)> =
                vec![(Endpoint::client(0), coordinator, msg)];
            let mut head = 0;
            while head < queue.len() {
                let (from, dest, m) = queue[head].clone();
                head += 1;
                if failures.is_failed(dest) {
                    continue;
                }
                load[dest.index()] += 1;
                let outs = engines[dest.index()].handle(from, m);
                for out in outs {
                    match out {
                        Outbound::To(d, m2) => queue.push((Endpoint::Server(dest), d, m2)),
                        Outbound::Broadcast(m2) => {
                            for i in 0..n {
                                queue.push((
                                    Endpoint::Server(dest),
                                    ServerId::new(i as u32),
                                    m2.clone(),
                                ));
                            }
                        }
                    }
                }
            }
        }
        self.update_load = load;
        Ok(())
    }

    fn update_coordinator(&mut self, key: &K) -> Result<ServerId, ServiceError> {
        if self.failures.operational_count() == 0 {
            return Err(ServiceError::AllServersFailed);
        }
        match self.assignment.spec_for(key) {
            StrategySpec::RoundRobin { .. } => {
                let coord = ServerId::new(0);
                if self.failures.is_failed(coord) {
                    Err(ServiceError::CoordinatorUnavailable)
                } else {
                    Ok(coord)
                }
            }
            _ => Ok(self
                .rng
                .random_operational_server(&self.failures)
                .expect("operational server available")),
        }
    }

    /// `place` for one key (§2).
    ///
    /// # Errors
    ///
    /// [`ServiceError::AllServersFailed`] when no coordinator is up.
    pub fn place(&mut self, key: K, entries: Vec<V>) -> Result<(), ServiceError> {
        let coordinator = self.update_coordinator(&key)?;
        self.drive(&key, coordinator, Message::PlaceReq { entries })
    }

    /// `add` for one key (§5).
    ///
    /// # Errors
    ///
    /// As [`Directory::place`], plus
    /// [`ServiceError::CoordinatorUnavailable`] for Round-Robin keys.
    pub fn add(&mut self, key: &K, v: V) -> Result<(), ServiceError> {
        let coordinator = self.update_coordinator(key)?;
        self.drive(key, coordinator, Message::AddReq { v })
    }

    /// `delete` for one key (§5).
    ///
    /// # Errors
    ///
    /// As [`Directory::add`].
    pub fn delete(&mut self, key: &K, v: &V) -> Result<(), ServiceError> {
        let coordinator = self.update_coordinator(key)?;
        self.drive(key, coordinator, Message::DeleteReq { v: v.clone() })
    }

    fn probe(&mut self, key: &K, s: ServerId, t: usize) -> Vec<V> {
        self.lookup_load[s.index()] += 1;
        let engines = self.engines.get_mut(key).expect("probed keys exist");
        engines[s.index()].sample(t)
    }

    /// `partial_lookup(k, t)`: the strategy-specific client procedure of
    /// the key's strategy (see [`Cluster::partial_lookup`] for the
    /// semantics, including the trim to exactly `t`).
    ///
    /// [`Cluster::partial_lookup`]: crate::Cluster::partial_lookup
    ///
    /// # Errors
    ///
    /// [`ServiceError::ZeroTarget`] for `t == 0`;
    /// [`ServiceError::AllServersFailed`] when nothing is up. An unknown
    /// key returns an empty, unsatisfied result (the paper's `lookup`
    /// returns the empty set for unknown keys).
    pub fn partial_lookup(&mut self, key: &K, t: usize) -> Result<LookupResult<V>, ServiceError> {
        if t == 0 {
            return Err(ServiceError::ZeroTarget);
        }
        if self.failures.operational_count() == 0 {
            return Err(ServiceError::AllServersFailed);
        }
        if !self.engines.contains_key(key) {
            return Ok(LookupResult::new(Vec::new(), Vec::new()));
        }
        match self.assignment.spec_for(key) {
            StrategySpec::FullReplication | StrategySpec::Fixed { .. } => {
                let s = self
                    .rng
                    .random_operational_server(&self.failures)
                    .expect("operational server available");
                let entries = self.probe(key, s, t);
                Ok(LookupResult::new(entries, vec![s]))
            }
            StrategySpec::RandomServer { .. } | StrategySpec::Hash { .. } => {
                let order = self.rng.shuffled_servers(self.n);
                let mut acc: IndexedSet<V> = IndexedSet::new();
                let mut contacted = Vec::new();
                for s in order {
                    if self.failures.is_failed(s) {
                        continue;
                    }
                    let answer = self.probe(key, s, t);
                    contacted.push(s);
                    acc.extend(answer);
                    if acc.len() >= t {
                        break;
                    }
                }
                let entries = self.trim(acc, t);
                Ok(LookupResult::new(entries, contacted))
            }
            StrategySpec::RoundRobin { y } => {
                let n = self.n;
                let start = self
                    .rng
                    .random_operational_server(&self.failures)
                    .expect("operational server available");
                let mut visited = vec![false; n];
                let mut acc: IndexedSet<V> = IndexedSet::new();
                let mut contacted = Vec::new();
                let mut cur = start;
                while !visited[cur.index()] && acc.len() < t {
                    visited[cur.index()] = true;
                    if self.failures.is_failed(cur) {
                        break;
                    }
                    let answer = self.probe(key, cur, t);
                    contacted.push(cur);
                    acc.extend(answer);
                    cur = cur.wrapping_add(y, n);
                }
                if acc.len() < t {
                    let mut rest: Vec<ServerId> = (0..n as u32)
                        .map(ServerId::new)
                        .filter(|s| !visited[s.index()] && !self.failures.is_failed(*s))
                        .collect();
                    self.rng.shuffle(&mut rest);
                    for s in rest {
                        let answer = self.probe(key, s, t);
                        contacted.push(s);
                        acc.extend(answer);
                        if acc.len() >= t {
                            break;
                        }
                    }
                }
                let entries = self.trim(acc, t);
                Ok(LookupResult::new(entries, contacted))
            }
        }
    }

    fn trim(&mut self, acc: IndexedSet<V>, t: usize) -> Vec<V> {
        if acc.len() > t {
            acc.sample(t, &mut self.rng)
        } else {
            acc.as_slice().to_vec()
        }
    }

    /// The entries a server stores for one key (empty for unknown keys).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn server_entries(&self, key: &K, s: ServerId) -> &[V] {
        assert!(s.index() < self.n, "server out of range");
        self.engines.get(key).map(|e| e[s.index()].entries()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(spec: StrategySpec) -> StrategyAssignment<&'static str> {
        StrategyAssignment::Uniform(spec)
    }

    #[test]
    fn keys_are_independent() {
        let mut dir: Directory<&str, u64> =
            Directory::new(5, uniform(StrategySpec::hash(2)), 1).unwrap();
        dir.place("a", (0..20).collect()).unwrap();
        dir.place("b", (100..120).collect()).unwrap();
        let a = dir.partial_lookup(&"a", 10).unwrap();
        assert!(a.entries().iter().all(|v| *v < 20));
        let b = dir.partial_lookup(&"b", 10).unwrap();
        assert!(b.entries().iter().all(|v| *v >= 100));
        assert_eq!(dir.key_count(), 2);
    }

    #[test]
    fn unknown_key_returns_empty() {
        let mut dir: Directory<&str, u64> =
            Directory::new(3, uniform(StrategySpec::full_replication()), 2).unwrap();
        let r = dir.partial_lookup(&"ghost", 5).unwrap();
        assert!(r.entries().is_empty());
        assert!(!r.is_satisfied(1));
    }

    #[test]
    fn per_key_strategies() {
        let assignment: StrategyAssignment<&str> = StrategyAssignment::PerKey(Box::new(|key| {
            if key.starts_with("hot/") {
                StrategySpec::round_robin(2)
            } else {
                StrategySpec::fixed(10)
            }
        }));
        let mut dir: Directory<&str, u64> = Directory::new(10, assignment, 3).unwrap();
        dir.place("hot/song", (0..100).collect()).unwrap();
        dir.place("cold/song", (0..100).collect()).unwrap();
        assert_eq!(dir.spec_for(&"hot/song"), StrategySpec::round_robin(2));
        assert_eq!(dir.spec_for(&"cold/song"), StrategySpec::fixed(10));
        // Fixed-10 stores the same 10 everywhere; Round-2 spreads.
        let cold = dir.server_entries(&"cold/song", ServerId::new(0));
        assert_eq!(cold.len(), 10);
        let hot = dir.server_entries(&"hot/song", ServerId::new(0));
        assert_eq!(hot.len(), 20);
    }

    #[test]
    fn updates_and_lookups_roundtrip() {
        let mut dir: Directory<&str, u64> =
            Directory::new(6, uniform(StrategySpec::round_robin(2)), 4).unwrap();
        dir.place("k", (0..30).collect()).unwrap();
        dir.add(&"k", 500).unwrap();
        dir.delete(&"k", &0).unwrap();
        for _ in 0..30 {
            let r = dir.partial_lookup(&"k", 30).unwrap();
            assert!(r.is_satisfied(30));
            assert!(!r.entries().contains(&0));
        }
    }

    #[test]
    fn lookup_load_is_tracked_per_server() {
        let mut dir: Directory<&str, u64> =
            Directory::new(4, uniform(StrategySpec::round_robin(1)), 5).unwrap();
        dir.place("k", (0..40).collect()).unwrap();
        for _ in 0..100 {
            dir.partial_lookup(&"k", 5).unwrap();
        }
        let total: u64 = dir.lookup_load().iter().sum();
        assert_eq!(total, 100); // 10 entries per server >= t: one probe each
                                // Random starts spread the load.
        for (i, &l) in dir.lookup_load().iter().enumerate() {
            assert!(l > 5, "server {i} load {l}");
        }
        dir.reset_load();
        assert!(dir.lookup_load().iter().all(|&l| l == 0));
    }

    #[test]
    fn update_load_counts_processed_messages() {
        let mut dir: Directory<&str, u64> =
            Directory::new(5, uniform(StrategySpec::full_replication()), 6).unwrap();
        dir.place("k", (0..10).collect()).unwrap();
        dir.reset_load();
        dir.add(&"k", 99).unwrap();
        // 1 client request + 5 broadcast copies.
        assert_eq!(dir.update_load().iter().sum::<u64>(), 6);
    }

    #[test]
    fn round_robin_keys_route_through_the_coordinator() {
        let mut dir: Directory<&str, u64> =
            Directory::new(4, uniform(StrategySpec::round_robin(2)), 8).unwrap();
        dir.place("k", (0..8).collect()).unwrap();
        dir.fail_server(ServerId::new(0));
        assert_eq!(dir.add(&"k", 99).unwrap_err(), ServiceError::CoordinatorUnavailable);
        dir.recover_server(ServerId::new(0));
        dir.add(&"k", 99).unwrap();
    }

    #[test]
    fn zero_servers_rejected() {
        let err = Directory::<u8, u64>::new(
            0,
            StrategyAssignment::Uniform(StrategySpec::full_replication()),
            9,
        )
        .unwrap_err();
        assert!(matches!(err, crate::ConfigError::InvalidParameter(_)));
    }

    #[test]
    fn zero_target_lookup_rejected() {
        let mut dir: Directory<&str, u64> =
            Directory::new(3, uniform(StrategySpec::full_replication()), 10).unwrap();
        dir.place("k", (0..5).collect()).unwrap();
        assert_eq!(dir.partial_lookup(&"k", 0).unwrap_err(), ServiceError::ZeroTarget);
    }

    #[test]
    fn failures_apply_across_keys() {
        let mut dir: Directory<&str, u64> =
            Directory::new(3, uniform(StrategySpec::full_replication()), 7).unwrap();
        dir.place("a", (0..5).collect()).unwrap();
        dir.place("b", (5..10).collect()).unwrap();
        dir.fail_server(ServerId::new(0));
        dir.fail_server(ServerId::new(1));
        for key in ["a", "b"] {
            let r = dir.partial_lookup(&key, 3).unwrap();
            assert_eq!(r.contacted(), &[ServerId::new(2)]);
            assert!(r.is_satisfied(3));
        }
        dir.fail_server(ServerId::new(2));
        assert_eq!(dir.partial_lookup(&"a", 1).unwrap_err(), ServiceError::AllServersFailed);
    }
}
