//! Clients with preferences (§7.1): return the `t` *best* entries.
//!
//! Formally: client `i` has a cost function `C_i` over entries and wants
//! an answer `R`, `|R| = t`, such that every returned entry costs no more
//! than every omitted one. The paper notes this is easy when `C_i` is
//! known — the subtlety is that a *partial* placement means no single
//! server can rank globally, so the client must decide how many servers
//! to consult: more probes → better answers, higher lookup cost.
//!
//! Two client procedures are provided:
//!
//! * [`preferred_lookup_exhaustive`] — contact every operational server;
//!   guaranteed globally optimal over the surviving coverage.
//! * [`preferred_lookup_budgeted`] — stop early under a probe budget once
//!   `t` entries are in hand; optimal only over what was seen, trading
//!   answer quality for lookup cost exactly as §7.2's `d` trades update
//!   cost for lookup cost.

use crate::{Cluster, Entry, LookupResult, ServiceError};

/// A client's preference over entries: lower cost is better.
///
/// Implemented for closures, so `|v: &V| …` works directly.
pub trait CostFunction<V> {
    /// The cost the client assigns to `v`.
    fn cost(&self, v: &V) -> f64;
}

impl<V, F: Fn(&V) -> f64> CostFunction<V> for F {
    fn cost(&self, v: &V) -> f64 {
        self(v)
    }
}

/// Sorts candidates by cost (ties broken arbitrarily but
/// deterministically) and keeps the best `t`.
fn best_t<V: Entry, C: CostFunction<V>>(mut candidates: Vec<V>, t: usize, cost: &C) -> Vec<V> {
    candidates.sort_by(|a, b| {
        cost.cost(a).partial_cmp(&cost.cost(b)).unwrap_or(std::cmp::Ordering::Equal)
    });
    candidates.truncate(t);
    candidates
}

/// The `t` globally best entries over every operational server.
///
/// Contacts all operational servers, asking each for *all* its entries
/// (the only way to guarantee the §7.1 optimality condition), then ranks.
/// Lookup cost is the number of operational servers.
///
/// # Errors
///
/// Propagates the cluster's lookup errors ([`ServiceError::ZeroTarget`],
/// [`ServiceError::AllServersFailed`]).
pub fn preferred_lookup_exhaustive<V: Entry, C: CostFunction<V>>(
    cluster: &mut Cluster<V>,
    t: usize,
    cost: &C,
) -> Result<LookupResult<V>, ServiceError> {
    // Asking for every entry forces the client procedure to keep probing
    // until the full surviving coverage is merged.
    let everything = cluster.partial_lookup(usize::MAX >> 1)?;
    if t == 0 {
        return Err(ServiceError::ZeroTarget);
    }
    let contacted = everything.contacted().to_vec();
    let ranked = best_t(everything.into_entries(), t, cost);
    Ok(LookupResult::new(ranked, contacted))
}

/// The `t` best entries among those seen within a probe budget.
///
/// Probes like a normal partial lookup (strategy-specific order) but asks
/// each server for everything it has, stopping as soon as ≥ `t` candidates
/// were gathered or `max_probes` servers were contacted. The answer is
/// optimal *over the candidates seen*, not globally.
///
/// # Errors
///
/// [`ServiceError::ZeroTarget`] if `t == 0` or `max_probes == 0`;
/// [`ServiceError::AllServersFailed`] if no server is operational.
pub fn preferred_lookup_budgeted<V: Entry, C: CostFunction<V>>(
    cluster: &mut Cluster<V>,
    t: usize,
    max_probes: usize,
    cost: &C,
) -> Result<LookupResult<V>, ServiceError> {
    if t == 0 || max_probes == 0 {
        return Err(ServiceError::ZeroTarget);
    }
    // Reuse the strategy's probe order by asking for a huge target, then
    // trim the trace to the budget. The cluster's own procedure stops when
    // it has merged every reachable entry.
    let full = cluster.partial_lookup(usize::MAX >> 1)?;
    let mut candidates = Vec::new();
    let mut contacted = Vec::new();
    for &s in full.contacted().iter().take(max_probes) {
        contacted.push(s);
        for v in cluster.server_entries(s) {
            if !candidates.contains(v) {
                candidates.push(v.clone());
            }
        }
        if candidates.len() >= t {
            break;
        }
    }
    Ok(LookupResult::new(best_t(candidates, t, cost), contacted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrategySpec;

    /// Latency-like cost: prefer numerically small entries.
    fn latency(v: &u64) -> f64 {
        *v as f64
    }

    #[test]
    fn exhaustive_returns_global_best() {
        let mut c = Cluster::new(10, StrategySpec::round_robin(2), 31).unwrap();
        c.place((0..100u64).collect()).unwrap();
        let r = preferred_lookup_exhaustive(&mut c, 5, &latency).unwrap();
        assert_eq!(r.entries(), &[0, 1, 2, 3, 4]);
        // Exhaustive means every operational server was consulted.
        assert_eq!(r.servers_contacted(), 10);
    }

    #[test]
    fn exhaustive_respects_failures() {
        let mut c = Cluster::new(10, StrategySpec::round_robin(1), 32).unwrap();
        c.place((0..100u64).collect()).unwrap();
        // Entry 0 lives only on server 0 under Round-1; kill it.
        c.fail_server(crate::ServerId::new(0));
        let r = preferred_lookup_exhaustive(&mut c, 3, &latency).unwrap();
        // The best *surviving* entries exclude those on server 0
        // (0, 10, 20, ... were placed there).
        assert!(!r.entries().contains(&0));
        assert_eq!(r.entries(), &[1, 2, 3]);
    }

    #[test]
    fn budgeted_trades_quality_for_cost() {
        let mut c = Cluster::new(10, StrategySpec::random_server(20), 33).unwrap();
        c.place((0..100u64).collect()).unwrap();
        let cheap = preferred_lookup_budgeted(&mut c, 5, 1, &latency).unwrap();
        assert_eq!(cheap.servers_contacted(), 1);
        assert_eq!(cheap.entries().len(), 5);
        let thorough = preferred_lookup_exhaustive(&mut c, 5, &latency).unwrap();
        let cheap_cost: f64 = cheap.entries().iter().map(latency).sum();
        let best_cost: f64 = thorough.entries().iter().map(latency).sum();
        assert!(best_cost <= cheap_cost);
    }

    #[test]
    fn closures_capture_client_state() {
        // A client that prefers entries close to its own id.
        let my_id = 57u64;
        let proximity = move |v: &u64| (*v as f64 - my_id as f64).abs();
        let mut c = Cluster::new(5, StrategySpec::full_replication(), 34).unwrap();
        c.place((0..100u64).collect()).unwrap();
        let r = preferred_lookup_exhaustive(&mut c, 3, &proximity).unwrap();
        let mut got = r.into_entries();
        got.sort_unstable();
        assert_eq!(got, vec![56, 57, 58]);
    }

    #[test]
    fn zero_target_rejected() {
        let mut c = Cluster::new(3, StrategySpec::full_replication(), 35).unwrap();
        c.place((0..10u64).collect()).unwrap();
        assert!(preferred_lookup_exhaustive(&mut c, 0, &latency).is_err());
        assert!(preferred_lookup_budgeted(&mut c, 0, 3, &latency).is_err());
        assert!(preferred_lookup_budgeted(&mut c, 3, 0, &latency).is_err());
    }
}
