//! Servers with limited reachability (§7.2).
//!
//! In an application-level overlay (Gnutella-style), a client at node `u`
//! can only reach servers within `d` hops. The placement problem becomes:
//! choose a set of *hosting* servers such that every client has a host
//! within `d` hops. Small `d` keeps lookups local (cheap) but needs more
//! hosts, which raises update cost — the trade-off the paper sketches.
//!
//! [`HostPlan`] solves the placement with the classic greedy
//! dominating-set heuristic and quantifies the trade-off:
//! [`HostPlan::host_count`] is the update fan-out, `d` bounds the lookup
//! radius, and [`host_count_by_radius`] sweeps `d` to expose the curve.

use pls_net::Topology;

/// A choice of hosting servers covering every overlay node within `d`
/// hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostPlan {
    d: usize,
    hosts: Vec<usize>,
}

impl HostPlan {
    /// Greedily selects hosts so every node of `topo` has a host within
    /// `d` hops: repeatedly pick the node covering the most uncovered
    /// nodes (the standard ln(n)-approximate dominating-set heuristic,
    /// the same greedy family as the paper's Appendix A).
    ///
    /// # Panics
    ///
    /// Panics if the topology is empty.
    pub fn greedy(topo: &Topology, d: usize) -> Self {
        assert!(!topo.is_empty(), "topology must have nodes");
        let n = topo.len();
        // coverage[u] = set of nodes within d hops of u.
        let coverage: Vec<Vec<usize>> =
            (0..n).map(|u| topo.within_hops(u, d).map(|s| s.index()).collect()).collect();
        let mut covered = vec![false; n];
        let mut remaining = n;
        let mut hosts = Vec::new();
        while remaining > 0 {
            let (best, gain) = (0..n)
                .map(|u| (u, coverage[u].iter().filter(|&&v| !covered[v]).count()))
                .max_by_key(|&(u, gain)| (gain, std::cmp::Reverse(u)))
                .expect("nonempty topology");
            if gain == 0 {
                // Disconnected node(s) unreachable from anywhere else:
                // host each one on itself.
                for (u, c) in covered.iter_mut().enumerate() {
                    if !*c {
                        hosts.push(u);
                        *c = true;
                    }
                }
                break;
            }
            hosts.push(best);
            for &v in &coverage[best] {
                if !covered[v] {
                    covered[v] = true;
                    remaining -= 1;
                }
            }
        }
        hosts.sort_unstable();
        HostPlan { d, hosts }
    }

    /// The hop bound this plan was built for.
    pub fn radius(&self) -> usize {
        self.d
    }

    /// The selected hosting servers (ascending node order).
    pub fn hosts(&self) -> &[usize] {
        &self.hosts
    }

    /// Number of hosts — proportional to the per-update fan-out cost.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Verifies the covering invariant: every node has a host within the
    /// radius.
    pub fn covers_all(&self, topo: &Topology) -> bool {
        (0..topo.len()).all(|u| self.nearest_host(topo, u).is_some())
    }

    /// The closest host to client node `u` within the radius, if any.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range for `topo`.
    pub fn nearest_host(&self, topo: &Topology, u: usize) -> Option<usize> {
        let dist = topo.distances_from(u);
        self.hosts
            .iter()
            .copied()
            .filter_map(|hst| dist[hst].map(|x| (x, hst)))
            .filter(|&(x, _)| x <= self.d)
            .min()
            .map(|(_, hst)| hst)
    }
}

/// Sweeps the hop bound `d` from 0 to `max_d`, returning
/// `(d, host_count)` pairs — the update-cost side of the paper's
/// lookup/update trade-off. Host count is non-increasing in `d`.
pub fn host_count_by_radius(topo: &Topology, max_d: usize) -> Vec<(usize, usize)> {
    (0..=max_d).map(|d| (d, HostPlan::greedy(topo, d).host_count())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pls_net::DetRng;

    #[test]
    fn radius_zero_hosts_everyone() {
        let topo = Topology::ring(6);
        let plan = HostPlan::greedy(&topo, 0);
        assert_eq!(plan.host_count(), 6);
        assert!(plan.covers_all(&topo));
    }

    #[test]
    fn ring_with_radius_one_needs_n_over_3() {
        let topo = Topology::ring(9);
        let plan = HostPlan::greedy(&topo, 1);
        assert!(plan.covers_all(&topo));
        // Each host covers itself + 2 neighbours: 3 hosts suffice; greedy
        // achieves at most a small constant more on a ring.
        assert!(plan.host_count() <= 4, "got {}", plan.host_count());
        assert!(plan.host_count() >= 3);
    }

    #[test]
    fn larger_radius_never_needs_more_hosts() {
        let mut rng = DetRng::seed_from(77);
        let topo = Topology::random(40, 3, &mut rng);
        let sweep = host_count_by_radius(&topo, 5);
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1, "host count rose with radius: {sweep:?}");
        }
        assert_eq!(sweep[0].1, 40);
    }

    #[test]
    fn nearest_host_is_within_radius() {
        let topo = Topology::ring(12);
        let plan = HostPlan::greedy(&topo, 2);
        for u in 0..12 {
            let host = plan.nearest_host(&topo, u).expect("covered");
            assert!(topo.distance(u, host).unwrap() <= 2);
        }
    }

    #[test]
    fn disconnected_nodes_host_themselves() {
        let mut topo = Topology::new(5);
        topo.connect(0, 1);
        topo.connect(1, 2);
        // Nodes 3 and 4 are isolated.
        let plan = HostPlan::greedy(&topo, 1);
        assert!(plan.covers_all(&topo));
        assert!(plan.hosts().contains(&3));
        assert!(plan.hosts().contains(&4));
    }

    #[test]
    fn coverage_check_detects_gaps() {
        let topo = Topology::ring(10);
        let bogus = HostPlan { d: 1, hosts: vec![0] };
        assert!(!bogus.covers_all(&topo));
    }
}
