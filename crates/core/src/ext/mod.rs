//! The paper's §7 variations, relaxing its two client assumptions.
//!
//! The core service assumes a client (a) is happy with *any* `t` entries
//! and (b) can reach all `n` servers directly. Section 7 sketches what
//! changes when either assumption is dropped:
//!
//! * [`preferences`] — clients rank entries by a cost function and want
//!   the `t` *best* entries (§7.1).
//! * [`reachability`] — clients sit in an overlay and can only reach
//!   servers within `d` hops (§7.2); placement must guarantee every
//!   client a nearby server, and there is a lookup-cost/update-cost
//!   trade-off in choosing `d`.

pub mod preferences;
pub mod reachability;
