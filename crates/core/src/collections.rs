//! An order-preserving set with O(1) membership, removal, and uniform
//! random choice — the workhorse behind every server's local entry store.
//!
//! Servers must answer "return `t` random entries from your store" on every
//! lookup and "replace a random entry" on reservoir-sampled adds, so
//! uniform random selection has to be cheap. [`IndexedSet`] pairs a `Vec`
//! (for indexing) with a `HashMap` from value to position (for membership),
//! using swap-remove to keep both O(1).

use std::collections::HashMap;
use std::hash::Hash;

use pls_net::DetRng;

/// A set over `T` supporting O(1) insert, remove, contains, and uniform
/// random sampling.
///
/// Iteration order is unspecified (removal swaps elements around) but
/// deterministic for a fixed operation sequence.
///
/// # Example
///
/// ```
/// use pls_core::IndexedSet;
/// let mut s: IndexedSet<u32> = IndexedSet::new();
/// assert!(s.insert(7));
/// assert!(!s.insert(7)); // already present
/// assert!(s.contains(&7));
/// assert!(s.remove(&7));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IndexedSet<T> {
    items: Vec<T>,
    index: HashMap<T, usize>,
}

// Manual impl: the derive would wrongly require `T: Default`.
impl<T> Default for IndexedSet<T> {
    fn default() -> Self {
        IndexedSet { items: Vec::new(), index: HashMap::new() }
    }
}

impl<T: Clone + Eq + Hash> IndexedSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        IndexedSet { items: Vec::new(), index: HashMap::new() }
    }

    /// Creates an empty set with capacity for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        IndexedSet { items: Vec::with_capacity(cap), index: HashMap::with_capacity(cap) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the set holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `value` is in the set.
    pub fn contains(&self, value: &T) -> bool {
        self.index.contains_key(value)
    }

    /// Inserts `value`; returns `false` if it was already present.
    pub fn insert(&mut self, value: T) -> bool {
        if self.index.contains_key(&value) {
            return false;
        }
        self.index.insert(value.clone(), self.items.len());
        self.items.push(value);
        true
    }

    /// Removes `value`; returns `false` if it was absent.
    pub fn remove(&mut self, value: &T) -> bool {
        match self.index.remove(value) {
            None => false,
            Some(pos) => {
                self.items.swap_remove(pos);
                if pos < self.items.len() {
                    // The former last element moved into `pos`.
                    let moved = self.items[pos].clone();
                    self.index.insert(moved, pos);
                }
                true
            }
        }
    }

    /// A uniformly random element, or `None` when empty.
    pub fn choose(&self, rng: &mut DetRng) -> Option<&T> {
        if self.items.is_empty() {
            None
        } else {
            Some(&self.items[rng.below(self.items.len())])
        }
    }

    /// Removes and returns a uniformly random element.
    pub fn remove_random(&mut self, rng: &mut DetRng) -> Option<T> {
        let victim = self.choose(rng)?.clone();
        self.remove(&victim);
        Some(victim)
    }

    /// `k` distinct uniformly random elements (all elements when
    /// `k >= len`). This is the "return t random entries from the stored
    /// entries" server behaviour of every strategy's lookup.
    pub fn sample(&self, k: usize, rng: &mut DetRng) -> Vec<T> {
        rng.subset(&self.items, k)
    }

    /// Iterates the elements in internal (unspecified) order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// View of the elements as a slice, in internal order.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
        self.index.clear();
    }
}

impl<T: Clone + Eq + Hash> FromIterator<T> for IndexedSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = IndexedSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl<T: Clone + Eq + Hash> Extend<T> for IndexedSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a, T> IntoIterator for &'a IndexedSet<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T: Clone + Eq + Hash> PartialEq for IndexedSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|v| other.contains(v))
    }
}

impl<T: Clone + Eq + Hash> Eq for IndexedSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = IndexedSet::new();
        for i in 0..100u32 {
            assert!(s.insert(i));
        }
        assert_eq!(s.len(), 100);
        for i in (0..100).step_by(2) {
            assert!(s.remove(&i));
        }
        assert_eq!(s.len(), 50);
        for i in 0..100 {
            assert_eq!(s.contains(&i), i % 2 == 1, "element {i}");
        }
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut s: IndexedSet<u32> = IndexedSet::new();
        s.insert(1);
        assert!(!s.remove(&2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut s = IndexedSet::new();
        s.insert("a");
        s.insert("b");
        s.insert("c");
        // Removing the first element moves "c" into its slot.
        s.remove(&"a");
        assert!(s.contains(&"b"));
        assert!(s.contains(&"c"));
        assert!(s.remove(&"c"));
        assert!(s.remove(&"b"));
        assert!(s.is_empty());
    }

    #[test]
    fn sample_returns_distinct_members() {
        let mut rng = DetRng::seed_from(1);
        let s: IndexedSet<u32> = (0..30).collect();
        let picked = s.sample(10, &mut rng);
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        for v in picked {
            assert!(s.contains(&v));
        }
    }

    #[test]
    fn choose_is_roughly_uniform() {
        let mut rng = DetRng::seed_from(2);
        let s: IndexedSet<usize> = (0..5).collect();
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            counts[*s.choose(&mut rng).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / trials as f64;
            assert!((p - 0.2).abs() < 0.02, "element {i} frequency {p}");
        }
    }

    #[test]
    fn empty_set_sampling() {
        let mut rng = DetRng::seed_from(3);
        let mut s: IndexedSet<u32> = IndexedSet::new();
        assert_eq!(s.choose(&mut rng), None);
        assert_eq!(s.remove_random(&mut rng), None);
        assert!(s.sample(5, &mut rng).is_empty());
    }

    #[test]
    fn equality_ignores_order() {
        let a: IndexedSet<u32> = [1, 2, 3].into_iter().collect();
        let mut b: IndexedSet<u32> = [3, 1].into_iter().collect();
        b.insert(2);
        assert_eq!(a, b);
        b.remove(&1);
        assert_ne!(a, b);
    }

    proptest! {
        /// The set agrees with a reference `std::collections::HashSet`
        /// under any interleaving of inserts and removes.
        #[test]
        fn matches_reference_set(ops in proptest::collection::vec((any::<bool>(), 0u8..32), 0..200)) {
            let mut ours: IndexedSet<u8> = IndexedSet::new();
            let mut reference = std::collections::HashSet::new();
            for (is_insert, v) in ops {
                if is_insert {
                    prop_assert_eq!(ours.insert(v), reference.insert(v));
                } else {
                    prop_assert_eq!(ours.remove(&v), reference.remove(&v));
                }
                prop_assert_eq!(ours.len(), reference.len());
            }
            for v in 0u8..32 {
                prop_assert_eq!(ours.contains(&v), reference.contains(&v));
            }
        }

        /// `sample(k)` always returns `min(k, len)` distinct members.
        #[test]
        fn sample_size_invariant(len in 0usize..40, k in 0usize..60, seed in any::<u64>()) {
            let mut rng = DetRng::seed_from(seed);
            let s: IndexedSet<usize> = (0..len).collect();
            let got = s.sample(k, &mut rng);
            prop_assert_eq!(got.len(), k.min(len));
            let mut sorted = got.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), got.len());
        }
    }
}
