//! The key-partitioning baseline the paper argues against.
//!
//! Traditional DHT-style lookup services (Chord, CAN — paper §8) hash
//! the **key** to one home server, which stores *all* of the key's
//! entries: "their approach is based on partitioning the key space
//! rather than partitioning the entries of a key". That design has the
//! two weaknesses the paper's introduction leads with:
//!
//! * **hot spots** — every lookup for a popular key lands on its home
//!   server;
//! * **availability** — if the home server (and its `r−1` successor
//!   replicas) are down, the key is gone entirely.
//!
//! [`KeyPartitioned`] implements that baseline faithfully (home server by
//! key hash, `r` successor replicas, per-server load accounting) so the
//! hot-spot experiment can compare it against the partial lookup
//! [`Directory`](crate::directory::Directory) under identical workloads.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use pls_net::{FailureSet, ServerId};

use crate::directory::Key;
use crate::{ConfigError, DetRng, Entry, IndexedSet, LookupResult, ServiceError};

/// A Chord/CAN-style key-partitioned lookup service: key → home server
/// (plus `r − 1` successor replicas), each storing the key's **entire**
/// entry set.
#[derive(Debug)]
pub struct KeyPartitioned<K: Key, V: Entry> {
    n: usize,
    replicas: usize,
    seed: u64,
    /// stores[server][key] = full entry set.
    stores: Vec<HashMap<K, IndexedSet<V>>>,
    failures: FailureSet,
    rng: DetRng,
    lookup_load: Vec<u64>,
    update_load: Vec<u64>,
}

impl<K: Key, V: Entry> KeyPartitioned<K, V> {
    /// Creates the baseline on `n` servers with `replicas` copies of each
    /// key's full entry set (Chord's successor-list replication).
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidParameter`] when `n` or `replicas` is zero;
    /// [`ConfigError::TooManyCopies`] when `replicas > n`.
    pub fn new(n: usize, replicas: usize, seed: u64) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::InvalidParameter("server count n must be positive"));
        }
        if replicas == 0 {
            return Err(ConfigError::InvalidParameter("replica count must be positive"));
        }
        if replicas > n {
            return Err(ConfigError::TooManyCopies { y: replicas, n });
        }
        Ok(KeyPartitioned {
            n,
            replicas,
            seed,
            stores: (0..n).map(|_| HashMap::new()).collect(),
            failures: FailureSet::new(n),
            rng: DetRng::seed_from(seed ^ 0xBA5E_11E5),
            lookup_load: vec![0; n],
            update_load: vec![0; n],
        })
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The key's home server.
    pub fn home_of(&self, key: &K) -> ServerId {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut hasher);
        key.hash(&mut hasher);
        ServerId::new((hasher.finish() % self.n as u64) as u32)
    }

    /// The key's replica group: home plus `r − 1` successors.
    pub fn replica_group(&self, key: &K) -> Vec<ServerId> {
        let home = self.home_of(key);
        (0..self.replicas).map(|k| home.wrapping_add(k, self.n)).collect()
    }

    /// Crashes a server.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn fail_server(&mut self, s: ServerId) {
        self.failures.fail(s);
    }

    /// Recovers a server (state retained — warm restart).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn recover_server(&mut self, s: ServerId) {
        self.failures.recover(s);
    }

    /// The failure set.
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// Lookup probes served per server (the hot-spot metric).
    pub fn lookup_load(&self) -> &[u64] {
        &self.lookup_load
    }

    /// Update messages processed per server.
    pub fn update_load(&self) -> &[u64] {
        &self.update_load
    }

    /// Resets the load accounting.
    pub fn reset_load(&mut self) {
        self.lookup_load.iter_mut().for_each(|c| *c = 0);
        self.update_load.iter_mut().for_each(|c| *c = 0);
    }

    fn live_replicas(&self, key: &K) -> Vec<ServerId> {
        self.replica_group(key).into_iter().filter(|s| !self.failures.is_failed(*s)).collect()
    }

    /// `place`: store the full entry set on the replica group.
    ///
    /// # Errors
    ///
    /// [`ServiceError::AllServersFailed`] when the whole replica group is
    /// down (the key cannot be written anywhere — exactly the
    /// availability weakness the paper highlights).
    pub fn place(&mut self, key: K, entries: Vec<V>) -> Result<(), ServiceError> {
        let live = self.live_replicas(&key);
        if live.is_empty() {
            return Err(ServiceError::AllServersFailed);
        }
        for s in live {
            self.update_load[s.index()] += 1;
            self.stores[s.index()].insert(key.clone(), entries.iter().cloned().collect());
        }
        Ok(())
    }

    /// `add(v)`: point update at the replica group.
    ///
    /// # Errors
    ///
    /// As [`KeyPartitioned::place`].
    pub fn add(&mut self, key: &K, v: V) -> Result<(), ServiceError> {
        let live = self.live_replicas(key);
        if live.is_empty() {
            return Err(ServiceError::AllServersFailed);
        }
        for s in live {
            self.update_load[s.index()] += 1;
            self.stores[s.index()].entry(key.clone()).or_default().insert(v.clone());
        }
        Ok(())
    }

    /// `delete(v)`: point removal at the replica group.
    ///
    /// # Errors
    ///
    /// As [`KeyPartitioned::place`].
    pub fn delete(&mut self, key: &K, v: &V) -> Result<(), ServiceError> {
        let live = self.live_replicas(key);
        if live.is_empty() {
            return Err(ServiceError::AllServersFailed);
        }
        for s in live {
            self.update_load[s.index()] += 1;
            if let Some(set) = self.stores[s.index()].get_mut(key) {
                set.remove(v);
            }
        }
        Ok(())
    }

    /// `partial_lookup(k, t)`: one probe to the first live replica (the
    /// home server when it is up). Since a replica stores *all* entries,
    /// lookup cost is always 1 — but every lookup for the key lands on
    /// the same `r` servers.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ZeroTarget`] for `t == 0`;
    /// [`ServiceError::AllServersFailed`] when the replica group is down
    /// — the key is unavailable even though `n − r` servers are healthy.
    pub fn partial_lookup(&mut self, key: &K, t: usize) -> Result<LookupResult<V>, ServiceError> {
        if t == 0 {
            return Err(ServiceError::ZeroTarget);
        }
        let live = self.live_replicas(key);
        if live.is_empty() {
            return Err(ServiceError::AllServersFailed);
        }
        // Clients pick a random live replica (Chord clients balance over
        // the successor list).
        let s = live[self.rng.below(live.len())];
        self.lookup_load[s.index()] += 1;
        let entries = self.stores[s.index()]
            .get(key)
            .map(|set| set.sample(t, &mut self.rng))
            .unwrap_or_default();
        Ok(LookupResult::new(entries, vec![s]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_lives_on_its_replica_group() {
        let mut kp: KeyPartitioned<&str, u64> = KeyPartitioned::new(10, 2, 1).unwrap();
        kp.place("song", (0..50).collect()).unwrap();
        let group = kp.replica_group(&"song");
        assert_eq!(group.len(), 2);
        for s in 0..10u32 {
            let holds = kp.stores[s as usize].contains_key("song");
            assert_eq!(holds, group.contains(&ServerId::new(s)), "server {s}");
        }
    }

    #[test]
    fn lookup_cost_is_always_one() {
        let mut kp: KeyPartitioned<&str, u64> = KeyPartitioned::new(10, 1, 2).unwrap();
        kp.place("k", (0..100).collect()).unwrap();
        for t in [1, 10, 99] {
            let r = kp.partial_lookup(&"k", t).unwrap();
            assert_eq!(r.servers_contacted(), 1);
            assert!(r.is_satisfied(t));
        }
    }

    #[test]
    fn all_lookups_hit_the_replica_group() {
        let mut kp: KeyPartitioned<&str, u64> = KeyPartitioned::new(10, 2, 3).unwrap();
        kp.place("hot", (0..10).collect()).unwrap();
        for _ in 0..200 {
            kp.partial_lookup(&"hot", 2).unwrap();
        }
        let group = kp.replica_group(&"hot");
        let on_group: u64 = group.iter().map(|s| kp.lookup_load()[s.index()]).sum();
        assert_eq!(on_group, 200, "a popular key concentrates all load on its replicas");
    }

    #[test]
    fn key_dies_with_its_replica_group() {
        let mut kp: KeyPartitioned<&str, u64> = KeyPartitioned::new(10, 2, 4).unwrap();
        kp.place("k", (0..10).collect()).unwrap();
        for s in kp.replica_group(&"k") {
            kp.fail_server(s);
        }
        // 8 of 10 servers are healthy, yet the key is unavailable.
        assert_eq!(kp.failures().operational_count(), 8);
        assert_eq!(kp.partial_lookup(&"k", 1).unwrap_err(), ServiceError::AllServersFailed);
        assert_eq!(kp.add(&"k", 99).unwrap_err(), ServiceError::AllServersFailed);
    }

    #[test]
    fn surviving_replica_keeps_serving() {
        let mut kp: KeyPartitioned<&str, u64> = KeyPartitioned::new(10, 2, 5).unwrap();
        kp.place("k", (0..10).collect()).unwrap();
        let group = kp.replica_group(&"k");
        kp.fail_server(group[0]);
        let r = kp.partial_lookup(&"k", 5).unwrap();
        assert_eq!(r.contacted(), &[group[1]]);
        assert!(r.is_satisfied(5));
    }

    #[test]
    fn updates_touch_only_the_group() {
        let mut kp: KeyPartitioned<&str, u64> = KeyPartitioned::new(10, 3, 6).unwrap();
        kp.place("k", (0..5).collect()).unwrap();
        kp.reset_load();
        kp.add(&"k", 100).unwrap();
        kp.delete(&"k", &0).unwrap();
        assert_eq!(kp.update_load().iter().sum::<u64>(), 6); // 2 ops × 3 replicas
        let group = kp.replica_group(&"k");
        for (i, &l) in kp.update_load().iter().enumerate() {
            let expected = if group.contains(&ServerId::new(i as u32)) { 2 } else { 0 };
            assert_eq!(l, expected, "server {i}");
        }
    }

    #[test]
    fn config_validation() {
        assert!(KeyPartitioned::<u32, u32>::new(0, 1, 0).is_err());
        assert!(KeyPartitioned::<u32, u32>::new(5, 0, 0).is_err());
        assert!(KeyPartitioned::<u32, u32>::new(5, 6, 0).is_err());
        assert!(KeyPartitioned::<u32, u32>::new(5, 5, 0).is_ok());
    }

    #[test]
    fn homes_are_spread_over_servers() {
        let kp: KeyPartitioned<u64, u64> = KeyPartitioned::new(10, 1, 7).unwrap();
        let mut counts = [0usize; 10];
        for key in 0..1000u64 {
            counts[kp.home_of(&key).index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 50 && c < 200, "server {i} homes {c} keys");
        }
    }
}
