//! Per-server state.
//!
//! Each of the `n` servers keeps a local entry store plus whatever
//! strategy-specific bookkeeping its protocol needs: RandomServer-x's
//! local entry counter, and Round-Robin-y's position slots, the
//! coordinator counters (on server 0), and in-flight migration contexts.

use std::collections::{BTreeMap, HashMap};

use crate::{Entry, IndexedSet};

/// A delete marker: remembers that an entry was removed, and at which
/// per-key version, so recovery paths that union donor states can tell a
/// deliberate delete from a missing copy (and never resurrect the
/// former).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tombstone {
    /// The per-key version the delete was coordinated at.
    pub version: u64,
    /// Coordinator wall-clock at delete time (ms since the Unix epoch),
    /// carried inside the versioned message so the engine itself stays
    /// clock-free. `0` means "unknown" (legacy records) and makes the
    /// tombstone eligible for garbage collection immediately.
    pub born_ms: u64,
}

/// The round-robin coordinator counters (paper Fig. 10: `head`/`tail`,
/// kept on one dedicated server).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RrCoord {
    /// Position of the oldest live entry.
    pub head: u64,
    /// Position the next added entry will receive.
    pub tail: u64,
}

/// Context the head server keeps while a Fig. 11 migration is in flight.
#[derive(Debug, Clone)]
pub(crate) struct MigrationState<V> {
    /// `M[v]`: how many `migrate(v)` requests are still expected.
    pub remaining: usize,
    /// `R[v]`: the replacement entry, i.e. the entry that sat at the head
    /// position. `None` when the deleted entry *was* the head entry.
    pub replacement: Option<V>,
    /// The replacement's old position, whose copies are removed once all
    /// migrations complete.
    pub old_pos: u64,
}

/// One server's complete state.
#[derive(Debug, Clone)]
pub(crate) struct ServerNode<V> {
    /// The local entry store every lookup samples from. For round-robin
    /// this is the set of distinct entries across `rr_slots`, maintained
    /// incrementally via `rr_refs`.
    pub store: IndexedSet<V>,
    /// RandomServer-x's local estimate of the system-wide entry count
    /// (incremented on `SampledStore`, decremented on `CountedRemove`).
    pub local_h: u64,
    /// Round-robin: position → entry for every locally held copy.
    pub rr_slots: BTreeMap<u64, V>,
    /// Round-robin: how many positions currently map to each entry (an
    /// entry can transiently occupy two positions mid-migration).
    pub rr_refs: HashMap<V, usize>,
    /// Coordinator counters; `Some` only on server 0 under round-robin.
    pub rr_coord: Option<RrCoord>,
    /// In-flight migration contexts, keyed by the deleted entry.
    pub rr_migrations: HashMap<V, MigrationState<V>>,
    /// Migration requests that arrived before this server's own copy of
    /// the `RrRemove` broadcast (possible over transports without
    /// cross-mailbox ordering, e.g. TCP): `(requester, dest_pos)` pairs,
    /// replayed once the migration context exists.
    pub rr_pending_migrations: HashMap<V, Vec<(pls_net::ServerId, u64)>>,
    /// Monotonic per-key version (Lamport-style): bumped by the
    /// coordinator on every versioned client update, maxed with every
    /// versioned internal message received.
    pub version: u64,
    /// Live delete markers, keyed by the deleted entry.
    pub tombstones: HashMap<V, Tombstone>,
}

impl<V: Entry> ServerNode<V> {
    pub(crate) fn new() -> Self {
        ServerNode {
            store: IndexedSet::new(),
            local_h: 0,
            rr_slots: BTreeMap::new(),
            rr_refs: HashMap::new(),
            rr_coord: None,
            rr_migrations: HashMap::new(),
            rr_pending_migrations: HashMap::new(),
            version: 0,
            tombstones: HashMap::new(),
        }
    }

    /// Installs an entry at a round-robin position, keeping `store` and
    /// `rr_refs` consistent. Overwriting an occupied position first
    /// releases the old occupant.
    pub(crate) fn rr_insert(&mut self, pos: u64, v: V) {
        if let Some(old) = self.rr_slots.insert(pos, v.clone()) {
            self.rr_release(&old);
        }
        *self.rr_refs.entry(v.clone()).or_insert(0) += 1;
        self.store.insert(v);
    }

    /// Clears a round-robin position; returns the entry that occupied it.
    pub(crate) fn rr_remove_at(&mut self, pos: u64) -> Option<V> {
        let old = self.rr_slots.remove(&pos)?;
        self.rr_release(&old);
        Some(old)
    }

    /// Removes the (unique-position) copy of `v`; returns its position.
    pub(crate) fn rr_remove_entry(&mut self, v: &V) -> Option<u64> {
        let pos = self.rr_slots.iter().find_map(|(p, entry)| (entry == v).then_some(*p))?;
        self.rr_remove_at(pos);
        Some(pos)
    }

    fn rr_release(&mut self, v: &V) {
        let count = self.rr_refs.get_mut(v).expect("ref-counted entry present");
        *count -= 1;
        if *count == 0 {
            self.rr_refs.remove(v);
            self.store.remove(v);
        }
    }
}

impl<V: Entry> Default for ServerNode<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_insert_and_remove_maintain_store() {
        let mut node: ServerNode<u32> = ServerNode::new();
        node.rr_insert(0, 10);
        node.rr_insert(1, 11);
        assert!(node.store.contains(&10));
        assert!(node.store.contains(&11));
        assert_eq!(node.rr_remove_at(0), Some(10));
        assert!(!node.store.contains(&10));
        assert!(node.store.contains(&11));
    }

    #[test]
    fn duplicate_entry_at_two_positions_refcounts() {
        // Mid-migration an entry can sit at its old and new position.
        let mut node: ServerNode<u32> = ServerNode::new();
        node.rr_insert(5, 42);
        node.rr_insert(9, 42);
        assert_eq!(node.store.len(), 1);
        node.rr_remove_at(5);
        // Still present via position 9.
        assert!(node.store.contains(&42));
        node.rr_remove_at(9);
        assert!(node.store.is_empty());
    }

    #[test]
    fn overwriting_a_position_releases_old_occupant() {
        let mut node: ServerNode<u32> = ServerNode::new();
        node.rr_insert(3, 1);
        node.rr_insert(3, 2);
        assert!(!node.store.contains(&1));
        assert!(node.store.contains(&2));
        assert_eq!(node.rr_slots.len(), 1);
    }

    #[test]
    fn rr_remove_entry_finds_position() {
        let mut node: ServerNode<u32> = ServerNode::new();
        node.rr_insert(7, 70);
        node.rr_insert(8, 80);
        assert_eq!(node.rr_remove_entry(&80), Some(8));
        assert_eq!(node.rr_remove_entry(&80), None);
        assert_eq!(node.store.len(), 1);
    }

    #[test]
    fn removing_vacant_position_is_none() {
        let mut node: ServerNode<u32> = ServerNode::new();
        assert_eq!(node.rr_remove_at(99), None);
    }
}
