//! A snapshot of which entries live on which servers.
//!
//! The paper evaluates strategies through their *instances*: concrete
//! placements of entries onto servers (§4.5). [`Placement`] is that
//! instance object — the metrics crate computes storage cost, coverage,
//! fault tolerance, and unfairness over it without knowing which strategy
//! produced it.

use std::collections::HashMap;

use pls_net::{FailureSet, ServerId};

use crate::Entry;

/// Per-server entry sets for one key: the "instance" of a strategy.
///
/// # Example
///
/// ```
/// use pls_core::Placement;
/// // Placement 2 of the paper's Figure 5: coverage 5 on 3 servers.
/// let p = Placement::from_rows(vec![
///     vec![1u32, 2],
///     vec![2, 3],
///     vec![4, 5],
/// ]);
/// assert_eq!(p.coverage(), 5);
/// assert_eq!(p.storage_used(), 6);
/// assert_eq!(p.replica_count(&2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement<V> {
    rows: Vec<Vec<V>>,
}

impl<V: Entry> Placement<V> {
    /// Builds a placement from one row of entries per server.
    ///
    /// Duplicate entries within a row are collapsed (a server stores an
    /// entry at most once).
    pub fn from_rows(rows: Vec<Vec<V>>) -> Self {
        let rows = rows
            .into_iter()
            .map(|row| {
                let mut seen = std::collections::HashSet::new();
                row.into_iter().filter(|v| seen.insert(v.clone())).collect()
            })
            .collect();
        Placement { rows }
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// The entries stored on server `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn server_entries(&self, s: ServerId) -> &[V] {
        &self.rows[s.index()]
    }

    /// Total entries stored across all servers — the storage cost of
    /// Table 1, measured rather than predicted.
    pub fn storage_used(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// How many servers hold `v` (the `f_e` of Appendix A).
    pub fn replica_count(&self, v: &V) -> usize {
        self.rows.iter().filter(|row| row.contains(v)).count()
    }

    /// Map from each stored entry to its replica count.
    pub fn replica_counts(&self) -> HashMap<V, usize> {
        let mut counts = HashMap::new();
        for row in &self.rows {
            for v in row {
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The distinct entries stored anywhere, in first-seen order.
    pub fn distinct_entries(&self) -> Vec<V> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for v in row {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// The **maximum coverage** (§4.3): how many distinct entries a client
    /// retrieves by contacting every server.
    pub fn coverage(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for row in &self.rows {
            for v in row {
                seen.insert(v.clone());
            }
        }
        seen.len()
    }

    /// Coverage counting only operational servers — what survives a given
    /// failure pattern.
    ///
    /// # Panics
    ///
    /// Panics if `failures` covers a different number of servers.
    pub fn coverage_surviving(&self, failures: &FailureSet) -> usize {
        assert_eq!(failures.len(), self.n(), "failure set size mismatch");
        let mut seen = std::collections::HashSet::new();
        for s in failures.operational() {
            for v in &self.rows[s.index()] {
                seen.insert(v.clone());
            }
        }
        seen.len()
    }

    /// Iterates `(server, entries)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, &[V])> + '_ {
        self.rows.iter().enumerate().map(|(i, row)| (ServerId::new(i as u32), row.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Placement 1 of Figure 5: all servers can answer t=2, coverage 2.
    fn figure5_placement1() -> Placement<u32> {
        Placement::from_rows(vec![vec![1, 2], vec![1, 2], vec![1, 2]])
    }

    /// Placement 2 of Figure 5: coverage 5.
    fn figure5_placement2() -> Placement<u32> {
        Placement::from_rows(vec![vec![1, 2], vec![2, 3], vec![4, 5]])
    }

    #[test]
    fn figure5_coverages() {
        assert_eq!(figure5_placement1().coverage(), 2);
        assert_eq!(figure5_placement2().coverage(), 5);
    }

    #[test]
    fn replica_counts_match_rows() {
        let p = figure5_placement2();
        assert_eq!(p.replica_count(&2), 2);
        assert_eq!(p.replica_count(&5), 1);
        assert_eq!(p.replica_count(&99), 0);
        let counts = p.replica_counts();
        assert_eq!(counts[&1], 1);
        assert_eq!(counts[&2], 2);
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn duplicates_within_a_row_collapse() {
        let p = Placement::from_rows(vec![vec![7u32, 7, 7]]);
        assert_eq!(p.storage_used(), 1);
        assert_eq!(p.server_entries(ServerId::new(0)), &[7]);
    }

    #[test]
    fn coverage_surviving_failures() {
        let p = figure5_placement2();
        let mut failures = FailureSet::new(3);
        failures.fail(ServerId::new(2));
        // Losing server 2 loses entries 4 and 5.
        assert_eq!(p.coverage_surviving(&failures), 3);
        failures.fail(ServerId::new(0));
        assert_eq!(p.coverage_surviving(&failures), 2);
        failures.fail(ServerId::new(1));
        assert_eq!(p.coverage_surviving(&failures), 0);
    }

    #[test]
    fn distinct_entries_first_seen_order() {
        let p = figure5_placement2();
        assert_eq!(p.distinct_entries(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn iter_yields_all_servers() {
        let p = figure5_placement1();
        let pairs: Vec<_> = p.iter().collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[1].0, ServerId::new(1));
        assert_eq!(pairs[1].1, &[1, 2]);
    }

    #[test]
    fn empty_placement_edge_cases() {
        let p: Placement<u32> = Placement::from_rows(vec![vec![], vec![]]);
        assert_eq!(p.coverage(), 0);
        assert_eq!(p.storage_used(), 0);
        assert!(p.distinct_entries().is_empty());
        assert!(p.replica_counts().is_empty());
        let failures = FailureSet::new(2);
        assert_eq!(p.coverage_surviving(&failures), 0);
    }

    #[test]
    #[should_panic(expected = "failure set size mismatch")]
    fn mismatched_failure_set_panics() {
        let p = figure5_placement1();
        let failures = FailureSet::new(5);
        p.coverage_surviving(&failures);
    }
}
