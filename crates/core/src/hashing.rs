//! The hash-function family used by Hash-y (§3.5).
//!
//! Hash-y assigns entry `v` to servers `f_1(v), f_2(v), …, f_y(v)`. Each
//! `f_i` must be (a) computable by *any* node from `v` alone — that is the
//! whole point: updates go straight to the affected servers with no
//! broadcast — and (b) stable across processes so a restarted client agrees
//! with the cluster. We therefore avoid `RandomState`-style per-process
//! seeding and build the family from a fixed base seed: `f_i(v) =
//! splitmix64(seed_i ⊕ H(v)) mod n`, where `H` is `std`'s SipHash with
//! fixed keys and `seed_i` is derived from the base seed by splitmix64
//! iteration.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use pls_net::ServerId;

/// splitmix64 finalizer: a fast, well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A family of `y` independent hash functions onto `n` servers.
///
/// # Example
///
/// ```
/// use pls_core::HashFamily;
/// let family = HashFamily::new(3, 10, 0xC0FFEE);
/// let servers = family.assign(&"song.mp3");
/// assert!(!servers.is_empty() && servers.len() <= 3);
/// // Deterministic: any node computes the same assignment.
/// assert_eq!(servers, HashFamily::new(3, 10, 0xC0FFEE).assign(&"song.mp3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    seeds: Vec<u64>,
    n: usize,
}

impl HashFamily {
    /// Creates a family of `y` functions mapping onto servers `0..n`,
    /// derived from `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `y` or `n` is zero.
    pub fn new(y: usize, n: usize, base_seed: u64) -> Self {
        assert!(y > 0, "need at least one hash function");
        assert!(n > 0, "need at least one server");
        let mut seeds = Vec::with_capacity(y);
        let mut s = splitmix64(base_seed);
        for _ in 0..y {
            seeds.push(s);
            s = splitmix64(s);
        }
        HashFamily { seeds, n }
    }

    /// Number of hash functions (`y`).
    pub fn y(&self) -> usize {
        self.seeds.len()
    }

    /// Number of servers hashed onto (`n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// `f_i(v)` for the `i`-th function (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= y`.
    pub fn server_for<V: Hash>(&self, i: usize, v: &V) -> ServerId {
        let mut hasher = DefaultHasher::new();
        v.hash(&mut hasher);
        let hv = hasher.finish();
        let mixed = splitmix64(self.seeds[i] ^ hv);
        ServerId::new((mixed % self.n as u64) as u32)
    }

    /// The *distinct* servers `{f_1(v), …, f_y(v)}`, in function order
    /// with duplicates removed — the paper stores a colliding entry only
    /// once.
    pub fn assign<V: Hash>(&self, v: &V) -> Vec<ServerId> {
        let mut out: Vec<ServerId> = Vec::with_capacity(self.seeds.len());
        for i in 0..self.seeds.len() {
            let s = self.server_for(i, v);
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let a = HashFamily::new(4, 7, 99);
        let b = HashFamily::new(4, 7, 99);
        for v in 0u64..100 {
            assert_eq!(a.assign(&v), b.assign(&v));
        }
    }

    #[test]
    fn different_seeds_give_different_assignments() {
        let a = HashFamily::new(2, 10, 1);
        let b = HashFamily::new(2, 10, 2);
        let same = (0u64..200).filter(|v| a.assign(v) == b.assign(v)).count();
        // With 10 servers and 2 functions, identical assignments for all
        // 200 entries would be astronomically unlikely.
        assert!(same < 50, "{same} identical assignments");
    }

    #[test]
    fn assignment_size_bounds() {
        let f = HashFamily::new(3, 10, 5);
        for v in 0u64..500 {
            let servers = f.assign(&v);
            assert!(!servers.is_empty() && servers.len() <= 3);
            // All in range, all distinct.
            let mut seen = std::collections::HashSet::new();
            for s in servers {
                assert!(s.index() < 10);
                assert!(seen.insert(s));
            }
        }
    }

    #[test]
    fn collisions_collapse_when_y_exceeds_n() {
        let f = HashFamily::new(8, 3, 5);
        for v in 0u64..100 {
            assert!(f.assign(&v).len() <= 3);
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        // The expected per-server load for Hash-1 over h entries is h/n.
        let f = HashFamily::new(1, 10, 123);
        let mut counts = [0usize; 10];
        let h = 20_000u64;
        for v in 0..h {
            counts[f.server_for(0, &v).index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = h as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "server {i} load {c} vs expected {expected}"
            );
        }
    }

    proptest! {
        /// Strings hash just as well as integers: assignments are stable
        /// and within bounds for arbitrary entry payloads.
        #[test]
        fn arbitrary_entries_assign_in_range(v in ".*", y in 1usize..6, n in 1usize..20) {
            let f = HashFamily::new(y, n, 42);
            let servers = f.assign(&v);
            prop_assert!(!servers.is_empty());
            prop_assert!(servers.len() <= y.min(n));
            for s in servers {
                prop_assert!(s.index() < n);
            }
        }
    }
}
