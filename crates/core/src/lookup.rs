//! The result of a partial lookup.

use pls_net::ServerId;

use crate::Entry;

/// What a `partial_lookup(t)` returned: the merged distinct entries and
/// which servers the client contacted, in contact order.
///
/// Per the service definition (§2), the answer is *any* subset of the
/// key's entries with size ≥ `t`; merging replies from several servers can
/// return more than `t`. When the placement cannot satisfy `t` (e.g.
/// Fixed-x with `x < t`, or after deletes ate the cushion) the result
/// holds everything that was found and [`LookupResult::is_satisfied`]
/// reports `false` — the paper's "lookup failure" (§6.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult<V> {
    entries: Vec<V>,
    contacted: Vec<ServerId>,
}

impl<V: Entry> LookupResult<V> {
    pub(crate) fn new(entries: Vec<V>, contacted: Vec<ServerId>) -> Self {
        debug_assert!(
            {
                let mut dedup = std::collections::HashSet::new();
                entries.iter().all(|v| dedup.insert(v.clone()))
            },
            "lookup answers are distinct"
        );
        LookupResult { entries, contacted }
    }

    /// The distinct entries retrieved, in retrieval order.
    pub fn entries(&self) -> &[V] {
        &self.entries
    }

    /// The servers contacted, in order.
    pub fn contacted(&self) -> &[ServerId] {
        &self.contacted
    }

    /// Number of servers contacted — the paper's *client lookup cost*
    /// (§4.2) for this single lookup.
    pub fn servers_contacted(&self) -> usize {
        self.contacted.len()
    }

    /// Whether the lookup met its target answer size.
    pub fn is_satisfied(&self, t: usize) -> bool {
        self.entries.len() >= t
    }

    /// Consumes the result, returning the entries.
    pub fn into_entries(self) -> Vec<V> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_satisfaction() {
        let r = LookupResult::new(vec![1u32, 2, 3], vec![ServerId::new(4)]);
        assert_eq!(r.entries(), &[1, 2, 3]);
        assert_eq!(r.servers_contacted(), 1);
        assert_eq!(r.contacted(), &[ServerId::new(4)]);
        assert!(r.is_satisfied(3));
        assert!(!r.is_satisfied(4));
        assert_eq!(r.into_entries(), vec![1, 2, 3]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "distinct")]
    fn duplicate_answers_are_a_bug() {
        let _ = LookupResult::new(vec![1u32, 1], vec![]);
    }
}
