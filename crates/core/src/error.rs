//! Errors surfaced by the service interface.

use std::error::Error;
use std::fmt;

/// Error performing a service operation (`place`, `add`, `delete`,
/// `partial_lookup`).
///
/// Note that retrieving *fewer than `t`* entries is **not** an error: the
/// paper treats it as a lookup *failure metric* (e.g. the cushion
/// experiment of Fig. 12) and the client still receives whatever was found
/// — check [`LookupResult::is_satisfied`]. An error is returned only when
/// the operation could not run at all.
///
/// [`LookupResult::is_satisfied`]: crate::LookupResult::is_satisfied
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// Every server in the cluster has failed; there is nobody to ask.
    AllServersFailed,
    /// A lookup with `t == 0` was requested; the target answer size must
    /// be positive.
    ZeroTarget,
    /// A Round-Robin-y update was requested while the dedicated
    /// coordinator server (server 0, which holds the `head`/`tail`
    /// counters of Fig. 10) is down — the single-point-of-failure
    /// drawback the paper calls out in §5.4.
    CoordinatorUnavailable,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::AllServersFailed => write!(f, "all servers have failed"),
            ServiceError::ZeroTarget => write!(f, "target answer size must be positive"),
            ServiceError::CoordinatorUnavailable => {
                write!(f, "round-robin coordinator server is down")
            }
        }
    }
}

impl Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        assert_eq!(ServiceError::AllServersFailed.to_string(), "all servers have failed");
        assert_eq!(ServiceError::ZeroTarget.to_string(), "target answer size must be positive");
        assert_eq!(
            ServiceError::CoordinatorUnavailable.to_string(),
            "round-robin coordinator server is down"
        );
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_good_error<E: Error + Send + Sync + 'static>() {}
        assert_good_error::<ServiceError>();
    }
}
