//! Transport-chaos tests: the protocol engines must be correct under
//! *any* delivery order that preserves per-(sender, destination) FIFO —
//! which is exactly what TCP connections guarantee, and strictly weaker
//! than the simulator's per-destination FIFO mailboxes.
//!
//! The round-robin migration protocol is the interesting case: a
//! `MigrateReq` may overtake the head server's own copy of the
//! `RrRemove` broadcast (the engines buffer and replay it). This harness
//! drives raw `NodeEngine`s through a chaotic scheduler and checks full
//! structural consistency after every operation.

use std::collections::{HashMap, HashSet, VecDeque};

use pls_core::engine::{NodeEngine, Outbound};
use pls_core::{DetRng, Message, ServerId, StrategySpec};
use pls_net::Endpoint;

/// A chaotic network: one FIFO queue per (sender, destination) channel,
/// drained in uniformly random channel order.
struct ChaosNet {
    channels: HashMap<(Endpoint, ServerId), VecDeque<Message<u64>>>,
    rng: DetRng,
}

impl ChaosNet {
    fn new(seed: u64) -> Self {
        ChaosNet { channels: HashMap::new(), rng: DetRng::seed_from(seed) }
    }

    fn send(&mut self, from: Endpoint, to: ServerId, msg: Message<u64>) {
        self.channels.entry((from, to)).or_default().push_back(msg);
    }

    fn send_out(&mut self, from: ServerId, n: usize, out: Vec<Outbound<u64>>) {
        for o in out {
            match o {
                Outbound::To(d, m) => self.send(Endpoint::Server(from), d, m),
                Outbound::Broadcast(m) => {
                    for i in 0..n {
                        self.send(Endpoint::Server(from), ServerId::new(i as u32), m.clone());
                    }
                }
            }
        }
    }

    /// Delivers everything, one random channel-head message at a time.
    fn run(&mut self, engines: &mut [NodeEngine<u64>]) {
        loop {
            let keys: Vec<(Endpoint, ServerId)> =
                self.channels.iter().filter(|(_, q)| !q.is_empty()).map(|(k, _)| *k).collect();
            if keys.is_empty() {
                return;
            }
            let &(from, to) = &keys[self.rng.below(keys.len())];
            let msg = self
                .channels
                .get_mut(&(from, to))
                .and_then(VecDeque::pop_front)
                .expect("picked nonempty channel");
            let out = engines[to.index()].handle(from, msg);
            let n = engines.len();
            self.send_out(to, n, out);
        }
    }
}

/// Full round-robin structural check (mirrors the one in `pls-core`'s
/// unit tests, but against raw engines).
fn assert_rr_consistent(engines: &[NodeEngine<u64>], y: usize, live: &HashSet<u64>) {
    let n = engines.len();
    let (head, tail) = engines[0].rr_counters().expect("coordinator");
    assert_eq!((tail - head) as usize, live.len(), "counter span vs live set");
    let mut seen = HashSet::new();
    for pos in head..tail {
        let base = ServerId::new((pos % n as u64) as u32);
        let mut value = None;
        for k in 0..y {
            let holder = base.wrapping_add(k, n);
            let v = engines[holder.index()]
                .rr_positions()
                .find(|(p, _)| *p == pos)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("position {pos} missing on {holder}"));
            if let Some(prev) = value {
                assert_eq!(prev, v, "position {pos} disagrees");
            }
            value = Some(v);
        }
        seen.insert(value.expect("y >= 1"));
    }
    assert_eq!(&seen, live, "live set mismatch");
    for (i, engine) in engines.iter().enumerate() {
        for (pos, _) in engine.rr_positions() {
            assert!(pos >= head && pos < tail, "stray position {pos} on server {i}");
        }
    }
}

fn chaos_round_robin_churn(seed: u64) {
    let n = 5;
    let y = 2;
    let mut engines: Vec<NodeEngine<u64>> = (0..n)
        .map(|i| NodeEngine::new(ServerId::new(i as u32), n, StrategySpec::round_robin(y), seed))
        .collect::<Result<_, _>>()
        .unwrap();
    let mut net = ChaosNet::new(seed ^ 0xC405);
    let coordinator = ServerId::new(0);

    // Place 12 entries.
    net.send(Endpoint::client(0), coordinator, Message::PlaceReq { entries: (0..12).collect() });
    net.run(&mut engines);
    let mut live: HashSet<u64> = (0..12).collect();
    assert_rr_consistent(&engines, y, &live);

    // Churn: interleave adds and deletes, each fully delivered in chaotic
    // order before the next (updates are serialized through the
    // coordinator, as in the paper).
    let mut rng = DetRng::seed_from(seed ^ 0xFA11);
    let mut next = 12u64;
    for step in 0..120 {
        if rng.coin_flip(0.5) || live.is_empty() {
            net.send(Endpoint::client(1), coordinator, Message::AddReq { v: next });
            live.insert(next);
            next += 1;
        } else {
            let victims: Vec<u64> = live.iter().copied().collect();
            let v = victims[rng.below(victims.len())];
            net.send(Endpoint::client(1), coordinator, Message::DeleteReq { v });
            live.remove(&v);
        }
        net.run(&mut engines);
        if step % 10 == 0 {
            assert_rr_consistent(&engines, y, &live);
        }
    }
    assert_rr_consistent(&engines, y, &live);
}

#[test]
fn round_robin_survives_chaotic_delivery() {
    for seed in 0..30 {
        chaos_round_robin_churn(seed);
    }
}

#[test]
fn hash_strategy_is_order_insensitive() {
    // Hash-y's messages are all independent stores/removes; any order
    // must converge to the assignment.
    let n = 6;
    let seed = 99;
    let mut engines: Vec<NodeEngine<u64>> = (0..n)
        .map(|i| NodeEngine::new(ServerId::new(i as u32), n, StrategySpec::hash(2), seed))
        .collect::<Result<_, _>>()
        .unwrap();
    let mut net = ChaosNet::new(7);
    net.send(
        Endpoint::client(0),
        ServerId::new(3),
        Message::PlaceReq { entries: (0..50).collect() },
    );
    net.run(&mut engines);
    for v in 0..50u64 {
        for (i, engine) in engines.iter().enumerate() {
            let should = engine.assigns_to(&v, ServerId::new(i as u32));
            let does = engine.entries().contains(&v);
            assert_eq!(should, does, "entry {v} on server {i}");
        }
    }
}

#[test]
fn migrate_reorder_buffering_under_repeated_chaos() {
    // Hammer precisely the racy delete path: single delete after place,
    // many different chaotic schedules.
    for seed in 0..200 {
        let n = 4;
        let y = 2;
        let mut engines: Vec<NodeEngine<u64>> = (0..n)
            .map(|i| NodeEngine::new(ServerId::new(i as u32), n, StrategySpec::round_robin(y), 1))
            .collect::<Result<_, _>>()
            .unwrap();
        let mut net = ChaosNet::new(seed);
        net.send(
            Endpoint::client(0),
            ServerId::new(0),
            Message::PlaceReq { entries: vec![1, 2, 3, 4, 5] },
        );
        net.run(&mut engines);
        // Delete the entry at position 2 — triggers head migration.
        net.send(Endpoint::client(0), ServerId::new(0), Message::DeleteReq { v: 3 });
        net.run(&mut engines);
        let live: HashSet<u64> = [1, 2, 4, 5].into_iter().collect();
        assert_rr_consistent(&engines, y, &live);
    }
}
