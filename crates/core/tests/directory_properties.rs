//! Model-based property tests for the multi-key [`Directory`]: arbitrary
//! interleavings of operations across keys with heterogeneous per-key
//! strategies, checked against one reference model per key.
//!
//! [`Directory`]: pls_core::directory::Directory

use std::collections::{HashMap, HashSet};

use pls_core::directory::{Directory, StrategyAssignment};
use pls_core::StrategySpec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Place { key: u8, count: u8 },
    Add { key: u8 },
    Delete { key: u8, idx: u8 },
    Lookup { key: u8, t: u8 },
}

const KEYS: u8 = 4;

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0u8..KEYS;
    prop_oneof![
        (key.clone(), 1u8..30).prop_map(|(key, count)| Op::Place { key, count }),
        key.clone().prop_map(|key| Op::Add { key }),
        (key.clone(), any::<u8>()).prop_map(|(key, idx)| Op::Delete { key, idx }),
        (key, any::<u8>()).prop_map(|(key, t)| Op::Lookup { key, t }),
    ]
}

/// Hetero assignment: key 0 full replication, 1 fixed, 2 round-robin,
/// 3 hash.
fn assignment() -> StrategyAssignment<u8> {
    StrategyAssignment::PerKey(Box::new(|key: &u8| match key % 4 {
        0 => StrategySpec::full_replication(),
        1 => StrategySpec::fixed(8),
        2 => StrategySpec::round_robin(2),
        _ => StrategySpec::hash(2),
    }))
}

fn run_history(ops: Vec<Op>, seed: u64) {
    let n = 5;
    let mut dir: Directory<u8, u64> = Directory::new(n, assignment(), seed).unwrap();
    let mut live: HashMap<u8, Vec<u64>> = HashMap::new();
    let mut next = 0u64;

    for op in ops {
        match op {
            Op::Place { key, count } => {
                let entries: Vec<u64> = (0..count as u64).map(|i| next + i).collect();
                next += count as u64;
                dir.place(key, entries.clone()).unwrap();
                live.insert(key, entries);
            }
            Op::Add { key } => {
                let v = next;
                next += 1;
                dir.add(&key, v).unwrap();
                live.entry(key).or_default().push(v);
            }
            Op::Delete { key, idx } => {
                let Some(entries) = live.get_mut(&key) else {
                    continue;
                };
                if entries.is_empty() {
                    continue;
                }
                let v = entries.swap_remove(idx as usize % entries.len());
                dir.delete(&key, &v).unwrap();
            }
            Op::Lookup { key, t } => {
                let t = 1 + (t as usize % 20);
                let result = dir.partial_lookup(&key, t).unwrap();
                let key_live: HashSet<u64> =
                    live.get(&key).map(|v| v.iter().copied().collect()).unwrap_or_default();
                let mut seen = HashSet::new();
                for v in result.entries() {
                    assert!(seen.insert(*v), "key {key}: duplicate answer");
                    assert!(
                        key_live.contains(v),
                        "key {key}: answer {v} not live (cross-key leak?)"
                    );
                }
                assert!(result.entries().len() <= t);
                // Complete-coverage strategies satisfy t when possible.
                let spec = dir.spec_for(&key);
                let complete = matches!(
                    spec,
                    StrategySpec::FullReplication
                        | StrategySpec::RoundRobin { .. }
                        | StrategySpec::Hash { .. }
                );
                if complete && key_live.len() >= t {
                    assert!(result.is_satisfied(t), "key {key} ({spec}): unsatisfied t={t}");
                }
            }
        }
        // Cross-key isolation: every key's stored entries belong to it.
        for key in 0..KEYS {
            let key_live: HashSet<u64> =
                live.get(&key).map(|v| v.iter().copied().collect()).unwrap_or_default();
            for i in 0..n {
                for v in dir.server_entries(&key, pls_core::ServerId::new(i as u32)) {
                    assert!(key_live.contains(v), "key {key}: stale or leaked entry {v}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn directory_histories_hold_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        seed in any::<u64>(),
    ) {
        run_history(ops, seed);
    }
}

/// Deterministic regression: a dense interleaving across all keys.
#[test]
fn dense_interleaving_smoke() {
    let ops: Vec<Op> = (0..60)
        .map(|i| match i % 5 {
            0 => Op::Place { key: (i % 4) as u8, count: 10 + (i % 7) as u8 },
            1 => Op::Add { key: ((i + 1) % 4) as u8 },
            2 => Op::Delete { key: ((i + 2) % 4) as u8, idx: i as u8 },
            3 => Op::Lookup { key: ((i + 3) % 4) as u8, t: 5 },
            _ => Op::Lookup { key: (i % 4) as u8, t: 12 },
        })
        .collect();
    run_history(ops, 99);
}
