//! Model-based property tests: arbitrary operation sequences against
//! every strategy, checked after each step against a reference model
//! (the live entry set) and the strategy's structural invariants.

use std::collections::HashSet;

use pls_core::{Cluster, ServerId, StrategySpec};
use proptest::prelude::*;

/// One step of a generated history.
#[derive(Debug, Clone)]
enum Op {
    Place(u8),  // place this many fresh entries
    Add,        // add one fresh entry
    Delete(u8), // delete the (i mod live)-th live entry
    Lookup(u8), // partial_lookup with t = 1 + (raw mod 40)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..40).prop_map(Op::Place),
        Just(Op::Add),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Lookup),
    ]
}

/// Checks the structural invariants of one strategy against the model.
fn check_invariants(cluster: &Cluster<u64>, live: &HashSet<u64>, spec: StrategySpec) {
    let n = cluster.n();
    let placement = cluster.placement();

    // Universal: no server stores a dead entry.
    for v in placement.distinct_entries() {
        assert!(live.contains(&v), "{spec}: dead entry {v} still stored");
    }

    match spec {
        StrategySpec::FullReplication => {
            for i in 0..n {
                let row: HashSet<u64> =
                    cluster.server_entries(ServerId::new(i as u32)).iter().copied().collect();
                assert_eq!(&row, live, "{spec}: server {i} diverged from live set");
            }
        }
        StrategySpec::Fixed { x } => {
            let first: HashSet<u64> =
                cluster.server_entries(ServerId::new(0)).iter().copied().collect();
            assert!(first.len() <= x, "{spec}: over capacity");
            for i in 1..n {
                let row: HashSet<u64> =
                    cluster.server_entries(ServerId::new(i as u32)).iter().copied().collect();
                assert_eq!(row, first, "{spec}: servers {i} and 0 differ");
            }
        }
        StrategySpec::RandomServer { x } => {
            for i in 0..n {
                let len = cluster.server_entries(ServerId::new(i as u32)).len();
                assert!(len <= x, "{spec}: server {i} holds {len} > x");
            }
        }
        StrategySpec::RoundRobin { y } => {
            // Positions are contiguous in [head, tail), hold one entry on
            // exactly its y consecutive servers, and cover the live set.
            let (head, tail) = cluster.rr_counters().expect("coordinator");
            assert_eq!((tail - head) as usize, live.len(), "{spec}: counter span");
            let mut seen = HashSet::new();
            for pos in head..tail {
                let base = ServerId::new((pos % n as u64) as u32);
                let mut value = None;
                for k in 0..y {
                    let holder = base.wrapping_add(k, n);
                    let v = cluster
                        .engine(holder)
                        .rr_positions()
                        .find(|(p, _)| *p == pos)
                        .map(|(_, v)| *v)
                        .unwrap_or_else(|| panic!("{spec}: position {pos} missing on {holder}"));
                    if let Some(prev) = value {
                        assert_eq!(prev, v, "{spec}: position {pos} disagrees");
                    }
                    value = Some(v);
                }
                seen.insert(value.expect("y >= 1"));
            }
            assert_eq!(&seen, live, "{spec}: live set mismatch");
        }
        StrategySpec::Hash { .. } => {
            // Every live entry sits exactly on its hash assignment.
            let probe = cluster.engine(ServerId::new(0));
            for &v in live {
                for i in 0..n {
                    let s = ServerId::new(i as u32);
                    let should = probe.assigns_to(&v, s);
                    let does = cluster.server_entries(s).contains(&v);
                    assert_eq!(should, does, "{spec}: entry {v} on {s}");
                }
            }
        }
    }
}

fn run_history(spec: StrategySpec, ops: Vec<Op>, seed: u64) {
    let mut cluster = Cluster::new(6, spec, seed).unwrap();
    let mut live: HashSet<u64> = HashSet::new();
    let mut live_order: Vec<u64> = Vec::new(); // for index-based deletes
    let mut next = 0u64;

    for op in ops {
        match op {
            Op::Place(count) => {
                let entries: Vec<u64> = (0..count as u64).map(|i| next + i).collect();
                next += count as u64;
                cluster.place(entries.clone()).unwrap();
                live = entries.iter().copied().collect();
                live_order = entries;
            }
            Op::Add => {
                let v = next;
                next += 1;
                cluster.add(v).unwrap();
                live.insert(v);
                live_order.push(v);
            }
            Op::Delete(raw) => {
                if live_order.is_empty() {
                    continue;
                }
                let idx = raw as usize % live_order.len();
                let v = live_order.swap_remove(idx);
                cluster.delete(&v).unwrap();
                live.remove(&v);
            }
            Op::Lookup(raw) => {
                let t = 1 + (raw as usize % 40);
                let result = cluster.partial_lookup(t).unwrap();
                // Distinct answers, all live.
                let mut seen = HashSet::new();
                for v in result.entries() {
                    assert!(seen.insert(*v), "{spec}: duplicate answer {v}");
                    assert!(live.contains(v), "{spec}: dead answer {v}");
                }
                // Never more than t.
                assert!(result.entries().len() <= t, "{spec}: over-delivered");
                // Complete-coverage strategies must satisfy t whenever the
                // live set allows.
                if live.len() >= t
                    && matches!(
                        spec,
                        StrategySpec::FullReplication
                            | StrategySpec::RoundRobin { .. }
                            | StrategySpec::Hash { .. }
                    )
                {
                    assert!(result.is_satisfied(t), "{spec}: unsatisfied t={t}");
                }
            }
        }
        check_invariants(&cluster, &live, spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn full_replication_history(ops in proptest::collection::vec(op_strategy(), 1..40), seed in any::<u64>()) {
        run_history(StrategySpec::full_replication(), ops, seed);
    }

    #[test]
    fn fixed_history(ops in proptest::collection::vec(op_strategy(), 1..40), seed in any::<u64>()) {
        run_history(StrategySpec::fixed(8), ops, seed);
    }

    #[test]
    fn random_server_history(ops in proptest::collection::vec(op_strategy(), 1..40), seed in any::<u64>()) {
        run_history(StrategySpec::random_server(8), ops, seed);
    }

    #[test]
    fn round_robin_history(ops in proptest::collection::vec(op_strategy(), 1..40), seed in any::<u64>()) {
        run_history(StrategySpec::round_robin(3), ops, seed);
    }

    #[test]
    fn hash_history(ops in proptest::collection::vec(op_strategy(), 1..40), seed in any::<u64>()) {
        run_history(StrategySpec::hash(2), ops, seed);
    }
}
