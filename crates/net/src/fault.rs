//! Tracking which servers are crashed.
//!
//! The paper's fault-tolerance metric (§4.4) takes an adversarial view: an
//! all-knowing adversary fails servers one at a time. [`FailureSet`] is the
//! shared ground truth of which servers are down; both the adversary (in
//! `pls-metrics`) and the client lookup procedures consult it.

use crate::ServerId;

/// The set of currently-failed servers among `n`.
///
/// # Example
///
/// ```
/// use pls_net::{FailureSet, ServerId};
/// let mut f = FailureSet::new(4);
/// f.fail(ServerId::new(2));
/// assert!(f.is_failed(ServerId::new(2)));
/// assert_eq!(f.operational_count(), 3);
/// f.recover(ServerId::new(2));
/// assert_eq!(f.failed_count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSet {
    down: Vec<bool>,
    failed_count: usize,
}

impl FailureSet {
    /// Creates a failure set for `n` servers, all operational.
    pub fn new(n: usize) -> Self {
        FailureSet { down: vec![false; n], failed_count: 0 }
    }

    /// Number of servers in the cluster (failed or not).
    pub fn len(&self) -> usize {
        self.down.len()
    }

    /// True when the cluster has no servers at all.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
    }

    /// Marks a server failed. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the server index is out of range.
    pub fn fail(&mut self, s: ServerId) {
        let slot = &mut self.down[s.index()];
        if !*slot {
            *slot = true;
            self.failed_count += 1;
        }
    }

    /// Marks a server operational again. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the server index is out of range.
    pub fn recover(&mut self, s: ServerId) {
        let slot = &mut self.down[s.index()];
        if *slot {
            *slot = false;
            self.failed_count -= 1;
        }
    }

    /// Whether the given server is currently failed.
    ///
    /// # Panics
    ///
    /// Panics if the server index is out of range.
    pub fn is_failed(&self, s: ServerId) -> bool {
        self.down[s.index()]
    }

    /// Number of failed servers.
    pub fn failed_count(&self) -> usize {
        self.failed_count
    }

    /// Number of operational servers.
    pub fn operational_count(&self) -> usize {
        self.down.len() - self.failed_count
    }

    /// Iterator over the operational server ids, in index order.
    pub fn operational(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.down
            .iter()
            .enumerate()
            .filter(|(_, down)| !**down)
            .map(|(i, _)| ServerId::new(i as u32))
    }

    /// Iterator over the failed server ids, in index order.
    pub fn failed(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.down
            .iter()
            .enumerate()
            .filter(|(_, down)| **down)
            .map(|(i, _)| ServerId::new(i as u32))
    }

    /// Recovers every server.
    pub fn recover_all(&mut self) {
        self.down.iter_mut().for_each(|d| *d = false);
        self.failed_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_and_recover_are_idempotent() {
        let mut f = FailureSet::new(3);
        let s = ServerId::new(1);
        f.fail(s);
        f.fail(s);
        assert_eq!(f.failed_count(), 1);
        f.recover(s);
        f.recover(s);
        assert_eq!(f.failed_count(), 0);
    }

    #[test]
    fn operational_iterates_in_order() {
        let mut f = FailureSet::new(4);
        f.fail(ServerId::new(0));
        f.fail(ServerId::new(2));
        let up: Vec<_> = f.operational().map(|s| s.index()).collect();
        assert_eq!(up, vec![1, 3]);
        let down: Vec<_> = f.failed().map(|s| s.index()).collect();
        assert_eq!(down, vec![0, 2]);
    }

    #[test]
    fn recover_all_resets() {
        let mut f = FailureSet::new(5);
        for i in 0..5 {
            f.fail(ServerId::new(i));
        }
        assert_eq!(f.operational_count(), 0);
        f.recover_all();
        assert_eq!(f.operational_count(), 5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let f = FailureSet::new(2);
        f.is_failed(ServerId::new(2));
    }
}
