//! Deterministic randomness with the sampling helpers the strategies need.
//!
//! Every randomized decision in the paper — which server a client contacts,
//! which `x`-subset a RandomServer-x server keeps, which `t` entries a
//! server returns — is drawn through [`DetRng`], so a fixed seed replays an
//! identical execution. That determinism is what makes the simulation
//! results and the property-based tests reproducible.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

use crate::{FailureSet, ServerId};

/// A seeded random number generator with strategy-oriented helpers.
///
/// # Example
///
/// ```
/// use pls_net::DetRng;
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        DetRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulation run its own stream while remaining reproducible.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from(self.inner.gen())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn coin_flip(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// A uniformly random server among all `n`, failed or not.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn random_server(&mut self, n: usize) -> ServerId {
        ServerId::new(self.below(n) as u32)
    }

    /// A uniformly random *operational* server, or `None` if every server
    /// has failed. This models the paper's "if the server has failed, keep
    /// on selecting another random server until an operational server is
    /// found".
    pub fn random_operational_server(&mut self, failures: &FailureSet) -> Option<ServerId> {
        let up = failures.operational_count();
        if up == 0 {
            return None;
        }
        let pick = self.below(up);
        failures.operational().nth(pick)
    }

    /// A uniformly random subset of `k` items from `items`, without
    /// replacement (order unspecified). Returns all items when `k >= len`.
    pub fn subset<T: Clone>(&mut self, items: &[T], k: usize) -> Vec<T> {
        if k >= items.len() {
            return items.to_vec();
        }
        items.choose_multiple(&mut self.inner, k).cloned().collect()
    }

    /// All server ids `0..n` in a uniformly random order — the probe order
    /// used by RandomServer-x and Hash-y lookups.
    pub fn shuffled_servers(&mut self, n: usize) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = (0..n as u32).map(ServerId::new).collect();
        ids.shuffle(&mut self.inner);
        ids
    }

    /// Shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Sample from the exponential distribution with the given mean, via
    /// inverse CDF.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        // 1 - U is in (0, 1] so ln() is finite.
        -mean * (1.0 - self.inner.gen::<f64>()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ_from_parent() {
        let mut a = DetRng::seed_from(7);
        let mut child = a.fork();
        // Overwhelmingly likely to differ.
        assert_ne!(a.next_u64(), child.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::seed_from(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn coin_flip_extremes() {
        let mut rng = DetRng::seed_from(2);
        assert!(!rng.coin_flip(0.0));
        assert!(rng.coin_flip(1.0));
        // Out-of-range probabilities are clamped rather than panicking,
        // because strategy code computes x/h ratios that can exceed 1.
        assert!(rng.coin_flip(7.5));
        assert!(!rng.coin_flip(-1.0));
    }

    #[test]
    fn random_operational_server_skips_failed() {
        let mut rng = DetRng::seed_from(3);
        let mut failures = FailureSet::new(5);
        failures.fail(ServerId::new(0));
        failures.fail(ServerId::new(4));
        for _ in 0..200 {
            let s = rng.random_operational_server(&failures).unwrap();
            assert!(!failures.is_failed(s));
        }
        for i in 1..4 {
            failures.fail(ServerId::new(i));
        }
        assert_eq!(rng.random_operational_server(&failures), None);
    }

    #[test]
    fn subset_sizes_and_membership() {
        let mut rng = DetRng::seed_from(4);
        let items: Vec<u32> = (0..50).collect();
        let sub = rng.subset(&items, 10);
        assert_eq!(sub.len(), 10);
        for v in &sub {
            assert!(items.contains(v));
        }
        // No duplicates.
        let mut sorted = sub.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        // k >= len returns everything.
        assert_eq!(rng.subset(&items, 100).len(), 50);
    }

    #[test]
    fn shuffled_servers_is_a_permutation() {
        let mut rng = DetRng::seed_from(5);
        let mut order = rng.shuffled_servers(10);
        order.sort();
        let expected: Vec<ServerId> = (0..10).map(ServerId::new).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seed_from(6);
        let n = 200_000;
        let mean = 40.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!((sample_mean - mean).abs() < 0.5, "sample mean {sample_mean}");
    }

    #[test]
    fn subset_is_roughly_uniform() {
        // Each of 10 items should appear in a 3-subset with p = 0.3.
        let mut rng = DetRng::seed_from(8);
        let items: Vec<usize> = (0..10).collect();
        let mut counts = [0usize; 10];
        let trials = 30_000;
        for _ in 0..trials {
            for v in rng.subset(&items, 3) {
                counts[v] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / trials as f64;
            assert!((p - 0.3).abs() < 0.02, "item {i} frequency {p}");
        }
    }
}
