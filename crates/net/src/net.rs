//! The in-process mailbox network.
//!
//! [`SimNet`] is a deterministic, single-threaded message fabric: senders
//! enqueue envelopes into per-server FIFO mailboxes, and
//! [`SimNet::deliver_all`] drains them in a fixed round-robin order,
//! invoking a handler that may itself enqueue further messages (this is how
//! a strategy coordinator's broadcast fans out). Messages addressed to a
//! failed server are silently dropped and tallied.

use std::collections::VecDeque;

use crate::{Endpoint, FailureSet, MessageCounter, MsgClass, SendError, ServerId};

/// A message in flight: payload plus addressing metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Who sent the message.
    pub from: Endpoint,
    /// The destination server.
    pub to: ServerId,
    /// Traffic class, for accounting.
    pub class: MsgClass,
    /// The payload.
    pub msg: M,
}

/// Deterministic in-process network connecting `n` simulated servers.
///
/// The generic parameter `M` is the protocol's message type; `pls-core`
/// instantiates it with its strategy messages.
///
/// Failure semantics: [`SimNet::fail`] crashes a server — its mailbox is
/// discarded (in-flight messages are lost) and future messages to it are
/// dropped, exactly as a crashed process would behave. [`SimNet::recover`]
/// brings it back empty-handed; state recovery is the strategy's problem.
#[derive(Debug, Clone)]
pub struct SimNet<M> {
    mailboxes: Vec<VecDeque<Envelope<M>>>,
    failures: FailureSet,
    counter: MessageCounter,
    /// Round-robin cursor: the server whose mailbox the next pop inspects
    /// first, so no mailbox can starve the others.
    cursor: usize,
}

impl<M> SimNet<M> {
    /// Creates a network of `n` operational servers with empty mailboxes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero: the service definition requires at least one
    /// server.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a lookup service needs at least one server");
        SimNet {
            mailboxes: (0..n).map(|_| VecDeque::new()).collect(),
            failures: FailureSet::new(n),
            counter: MessageCounter::new(),
            cursor: 0,
        }
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.mailboxes.len()
    }

    /// The current failure set.
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// The message accounting so far.
    pub fn counter(&self) -> &MessageCounter {
        &self.counter
    }

    /// Resets the message accounting (placement state is untouched).
    pub fn reset_counter(&mut self) {
        self.counter.reset();
    }

    /// Crashes a server: pending mail is lost, future mail is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the server index is out of range.
    pub fn fail(&mut self, s: ServerId) {
        self.failures.fail(s);
        self.mailboxes[s.index()].clear();
    }

    /// Brings a crashed server back (with an empty mailbox). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the server index is out of range.
    pub fn recover(&mut self, s: ServerId) {
        self.failures.recover(s);
    }

    /// Enqueues a point-to-point message (cost 1 when processed).
    ///
    /// Messages to failed servers are dropped and counted as such; this is
    /// not an error, matching the fire-and-forget store/remove messages of
    /// the paper's protocols.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::UnknownServer`] if `to` is outside `0..n`.
    pub fn send(
        &mut self,
        from: Endpoint,
        to: ServerId,
        msg: M,
        class: MsgClass,
    ) -> Result<(), SendError> {
        if to.index() >= self.n() {
            return Err(SendError::UnknownServer(to));
        }
        if self.failures.is_failed(to) {
            self.counter.record_dropped();
            return Ok(());
        }
        self.mailboxes[to.index()].push_back(Envelope { from, to, class, msg });
        Ok(())
    }

    /// Enqueues a copy of `msg` to every server, including the sender if it
    /// is a server (the paper's broadcasts are self-inclusive: "S broadcasts
    /// a store message to all servers ... upon receiving the store message,
    /// each server makes a local copy"). Costs `n` processed messages, minus
    /// drops at failed servers.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for parity with [`SimNet::send`].
    pub fn broadcast(&mut self, from: Endpoint, msg: M, class: MsgClass) -> Result<(), SendError>
    where
        M: Clone,
    {
        for i in 0..self.n() {
            self.send(from, ServerId::new(i as u32), msg.clone(), class)?;
        }
        Ok(())
    }

    /// True when no messages are waiting anywhere.
    pub fn is_quiescent(&self) -> bool {
        self.mailboxes.iter().all(VecDeque::is_empty)
    }

    /// Total messages currently queued.
    pub fn pending(&self) -> usize {
        self.mailboxes.iter().map(VecDeque::len).sum()
    }

    /// Pops the next queued envelope in fair round-robin order, counting it
    /// as processed.
    ///
    /// This is the primitive a protocol driver loops on:
    /// `while let Some(env) = net.pop_next() { handle(env) }`. Counting
    /// happens at pop time, matching the paper's "messages received and
    /// processed by servers" cost model.
    pub fn pop_next(&mut self) -> Option<Envelope<M>> {
        let n = self.n();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if let Some(env) = self.mailboxes[i].pop_front() {
                self.cursor = (i + 1) % n;
                self.counter.record(env.class);
                return Some(env);
            }
        }
        None
    }

    /// Records `count` processed messages of `class` without materializing
    /// envelopes.
    ///
    /// Lookup probes are request/reply interactions the client performs
    /// directly; modeling them as synchronous calls and charging here keeps
    /// the accounting faithful without paying queueing overhead on hot
    /// simulation paths.
    pub fn charge(&mut self, class: MsgClass, count: u64) {
        for _ in 0..count {
            self.counter.record(class);
        }
    }

    /// Delivers queued messages until the network is quiescent.
    ///
    /// The handler receives `(&mut SimNet, Envelope)` and may send further
    /// messages; those are delivered too. Delivery order is deterministic:
    /// fair round-robin over servers via [`SimNet::pop_next`]. Each delivery
    /// to an operational server increments the counter for the envelope's
    /// class before the handler runs.
    ///
    /// Returns the number of messages delivered.
    pub fn deliver_all<F>(&mut self, mut handler: F) -> usize
    where
        F: FnMut(&mut SimNet<M>, Envelope<M>),
    {
        let mut delivered = 0;
        while let Some(env) = self.pop_next() {
            delivered += 1;
            handler(self, env);
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = SimNet::<u8>::new(0);
    }

    #[test]
    fn p2p_delivery_and_counting() {
        let mut net: SimNet<u32> = SimNet::new(3);
        net.send(Endpoint::client(0), sid(2), 99, MsgClass::Update).unwrap();
        let mut got = Vec::new();
        let delivered = net.deliver_all(|_, e| got.push((e.to, e.msg)));
        assert_eq!(delivered, 1);
        assert_eq!(got, vec![(sid(2), 99)]);
        assert_eq!(net.counter().update_messages(), 1);
    }

    #[test]
    fn broadcast_costs_n() {
        let mut net: SimNet<u32> = SimNet::new(5);
        net.broadcast(Endpoint::Server(sid(0)), 1, MsgClass::Update).unwrap();
        let delivered = net.deliver_all(|_, _| {});
        assert_eq!(delivered, 5);
        assert_eq!(net.counter().update_messages(), 5);
    }

    #[test]
    fn failed_server_drops_mail() {
        let mut net: SimNet<u32> = SimNet::new(3);
        net.fail(sid(1));
        net.broadcast(Endpoint::client(0), 7, MsgClass::Update).unwrap();
        let delivered = net.deliver_all(|_, _| {});
        assert_eq!(delivered, 2);
        assert_eq!(net.counter().update_messages(), 2);
        assert_eq!(net.counter().dropped(), 1);
    }

    #[test]
    fn crash_loses_inflight_mail() {
        let mut net: SimNet<u32> = SimNet::new(2);
        net.send(Endpoint::client(0), sid(1), 1, MsgClass::Update).unwrap();
        net.fail(sid(1));
        assert!(net.is_quiescent());
        net.recover(sid(1));
        // Recovered server starts with an empty mailbox.
        assert_eq!(net.deliver_all(|_, _| {}), 0);
    }

    #[test]
    fn handler_can_cascade_sends() {
        // Client -> S0, which fans out to S1 and S2, which each ack S0.
        let mut net: SimNet<&'static str> = SimNet::new(3);
        net.send(Endpoint::client(0), sid(0), "req", MsgClass::Update).unwrap();
        let mut acks = 0;
        let delivered = net.deliver_all(|net, e| match e.msg {
            "req" => {
                for i in 1..3 {
                    net.send(e.to.into(), sid(i), "store", MsgClass::Update).unwrap();
                }
            }
            "store" => {
                net.send(e.to.into(), sid(0), "ack", MsgClass::Update).unwrap();
            }
            "ack" => acks += 1,
            other => panic!("unexpected message {other}"),
        });
        assert_eq!(acks, 2);
        assert_eq!(delivered, 5); // req + 2 store + 2 ack
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let mut net: SimNet<u32> = SimNet::new(2);
        let err = net.send(Endpoint::client(0), sid(9), 0, MsgClass::Update).unwrap_err();
        assert_eq!(err, SendError::UnknownServer(sid(9)));
    }

    #[test]
    fn pop_next_counts_and_rotates() {
        let mut net: SimNet<u32> = SimNet::new(3);
        net.send(Endpoint::client(0), sid(2), 9, MsgClass::Lookup).unwrap();
        let env = net.pop_next().unwrap();
        assert_eq!(env.msg, 9);
        assert_eq!(net.counter().lookup_messages(), 1);
        assert!(net.pop_next().is_none());
    }

    #[test]
    fn charge_records_without_envelopes() {
        let mut net: SimNet<u32> = SimNet::new(2);
        net.charge(MsgClass::Lookup, 3);
        net.charge(MsgClass::Update, 2);
        assert_eq!(net.counter().lookup_messages(), 3);
        assert_eq!(net.counter().update_messages(), 2);
        assert!(net.is_quiescent());
    }

    #[test]
    fn round_robin_drain_is_fair_and_deterministic() {
        let mut net: SimNet<u32> = SimNet::new(2);
        // Two messages for S0, one for S1.
        net.send(Endpoint::client(0), sid(0), 1, MsgClass::Control).unwrap();
        net.send(Endpoint::client(0), sid(0), 2, MsgClass::Control).unwrap();
        net.send(Endpoint::client(0), sid(1), 3, MsgClass::Control).unwrap();
        let mut order = Vec::new();
        net.deliver_all(|_, e| order.push(e.msg));
        // Sweep 1 delivers one message per server (1 then 3), sweep 2 the rest.
        assert_eq!(order, vec![1, 3, 2]);
    }
}
