//! Error types for the simulated network.

use std::error::Error;
use std::fmt;

use crate::ServerId;

/// Error returned when a message cannot be injected into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The destination server index is outside `0..n`.
    UnknownServer(ServerId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::UnknownServer(s) => write!(f, "unknown destination server {s}"),
        }
    }
}

impl Error for SendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_server() {
        let err = SendError::UnknownServer(ServerId::new(42));
        assert_eq!(err.to_string(), "unknown destination server S42");
    }
}
