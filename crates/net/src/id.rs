//! Typed addresses for the participants of the lookup service.

use std::fmt;

/// Identifier of one of the `n` lookup servers.
///
/// Servers are numbered `0..n`. The paper's Round-Robin-y strategy relies on
/// modular arithmetic over server indices, so [`ServerId`] exposes
/// [`ServerId::wrapping_add`] for `(s + k) mod n` stepping.
///
/// # Example
///
/// ```
/// use pls_net::ServerId;
/// let s = ServerId::new(8);
/// assert_eq!(s.wrapping_add(3, 10), ServerId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server id from its index.
    pub fn new(index: u32) -> Self {
        ServerId(index)
    }

    /// The raw index of this server.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `(self + k) mod n`: the server `k` positions after this one in the
    /// ring of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn wrapping_add(self, k: usize, n: usize) -> ServerId {
        assert!(n > 0, "ring size must be positive");
        ServerId(((self.0 as usize + k) % n) as u32)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u32> for ServerId {
    fn from(index: u32) -> Self {
        ServerId(index)
    }
}

/// The origin of a message: either a server or an external client.
///
/// Clients are outside the server set; a message *from* a client *to* a
/// server is what the paper charges as the "process the client request"
/// cost of 1 (§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// One of the lookup servers.
    Server(ServerId),
    /// An external client, identified by an arbitrary number.
    Client(u64),
}

impl Endpoint {
    /// Convenience constructor for a client endpoint.
    pub fn client(id: u64) -> Self {
        Endpoint::Client(id)
    }

    /// Returns the server id if this endpoint is a server.
    pub fn as_server(self) -> Option<ServerId> {
        match self {
            Endpoint::Server(s) => Some(s),
            Endpoint::Client(_) => None,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Server(s) => write!(f, "{s}"),
            Endpoint::Client(c) => write!(f, "C{c}"),
        }
    }
}

impl From<ServerId> for Endpoint {
    fn from(s: ServerId) -> Self {
        Endpoint::Server(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_id_ring_arithmetic() {
        let s = ServerId::new(0);
        assert_eq!(s.wrapping_add(0, 5), ServerId::new(0));
        assert_eq!(s.wrapping_add(4, 5), ServerId::new(4));
        assert_eq!(s.wrapping_add(5, 5), ServerId::new(0));
        assert_eq!(s.wrapping_add(12, 5), ServerId::new(2));
    }

    #[test]
    #[should_panic(expected = "ring size must be positive")]
    fn server_id_zero_ring_panics() {
        ServerId::new(0).wrapping_add(1, 0);
    }

    #[test]
    fn endpoint_conversions() {
        let s = ServerId::new(3);
        let e: Endpoint = s.into();
        assert_eq!(e.as_server(), Some(s));
        assert_eq!(Endpoint::client(7).as_server(), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ServerId::new(2).to_string(), "S2");
        assert_eq!(Endpoint::client(9).to_string(), "C9");
        assert_eq!(Endpoint::Server(ServerId::new(1)).to_string(), "S1");
    }
}
