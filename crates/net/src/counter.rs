//! The paper's message cost model (§6.4), split by traffic class.
//!
//! > "we count the total number of messages received and processed by all
//! > the servers in the system during simulation. Since we are counting
//! > processed messages, a broadcast has overhead cost n where n is the
//! > number of servers. A point-to-point message has cost 1."

/// Traffic class a message belongs to, for separate accounting.
///
/// Figure 14 of the paper counts *update* overhead only, while the lookup
/// cost metric (§4.2) counts servers contacted per lookup. Keeping the
/// classes separate lets a single simulation report both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Messages caused by `place`, `add` or `delete` (including internal
    /// store/remove/migrate traffic).
    Update,
    /// Messages caused by `partial_lookup` probes and replies.
    Lookup,
    /// Control-plane traffic that is neither (e.g. health checks in the
    /// live deployment); not reported by the paper's metrics.
    Control,
}

/// Counts messages processed by servers, per [`MsgClass`].
///
/// A message *processed* means it was delivered to an operational server.
/// Messages addressed to failed servers are tallied in
/// [`MessageCounter::dropped`] instead, mirroring the paper's assumption
/// that a failed server does no work.
///
/// # Example
///
/// ```
/// use pls_net::{MessageCounter, MsgClass};
/// let mut c = MessageCounter::new();
/// c.record(MsgClass::Update);
/// c.record(MsgClass::Update);
/// c.record(MsgClass::Lookup);
/// assert_eq!(c.update_messages(), 2);
/// assert_eq!(c.lookup_messages(), 1);
/// assert_eq!(c.total(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounter {
    update: u64,
    lookup: u64,
    control: u64,
    dropped: u64,
}

impl MessageCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one processed message of the given class.
    pub fn record(&mut self, class: MsgClass) {
        match class {
            MsgClass::Update => self.update += 1,
            MsgClass::Lookup => self.lookup += 1,
            MsgClass::Control => self.control += 1,
        }
    }

    /// Records a message that was lost because its destination had failed.
    pub fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Messages processed on behalf of updates (the quantity plotted in
    /// Figure 14).
    pub fn update_messages(&self) -> u64 {
        self.update
    }

    /// Messages processed on behalf of lookups.
    pub fn lookup_messages(&self) -> u64 {
        self.lookup
    }

    /// Control-plane messages processed.
    pub fn control_messages(&self) -> u64 {
        self.control
    }

    /// Messages dropped at failed servers.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All processed messages, across every class (excludes dropped).
    pub fn total(&self) -> u64 {
        self.update + self.lookup + self.control
    }

    /// Resets every tally to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Component-wise difference `self - earlier`, for measuring a window.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has any tally larger than `self` (i.e. it is not
    /// actually an earlier snapshot of the same counter).
    pub fn since(&self, earlier: &MessageCounter) -> MessageCounter {
        MessageCounter {
            update: self.update.checked_sub(earlier.update).expect("snapshot ordering"),
            lookup: self.lookup.checked_sub(earlier.lookup).expect("snapshot ordering"),
            control: self.control.checked_sub(earlier.control).expect("snapshot ordering"),
            dropped: self.dropped.checked_sub(earlier.dropped).expect("snapshot ordering"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_class() {
        let mut c = MessageCounter::new();
        for _ in 0..5 {
            c.record(MsgClass::Update);
        }
        for _ in 0..3 {
            c.record(MsgClass::Lookup);
        }
        c.record(MsgClass::Control);
        c.record_dropped();
        assert_eq!(c.update_messages(), 5);
        assert_eq!(c.lookup_messages(), 3);
        assert_eq!(c.control_messages(), 1);
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.total(), 9);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = MessageCounter::new();
        c.record(MsgClass::Update);
        c.record_dropped();
        c.reset();
        assert_eq!(c, MessageCounter::new());
    }

    #[test]
    fn since_computes_window() {
        let mut c = MessageCounter::new();
        c.record(MsgClass::Update);
        let snap = c;
        c.record(MsgClass::Update);
        c.record(MsgClass::Lookup);
        let window = c.since(&snap);
        assert_eq!(window.update_messages(), 1);
        assert_eq!(window.lookup_messages(), 1);
    }

    #[test]
    #[should_panic(expected = "snapshot ordering")]
    fn since_rejects_unordered_snapshots() {
        let mut later = MessageCounter::new();
        later.record(MsgClass::Update);
        let earlier = MessageCounter::new();
        // Swapped on purpose: `earlier.since(&later)` underflows.
        let _ = earlier.since(&later);
    }
}
