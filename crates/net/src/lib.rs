//! Simulated message-passing substrate for partial lookup services.
//!
//! The evaluation in *Partial Lookup Services* (Sun & Garcia-Molina, ICDCS
//! 2003) measures update overhead by counting the messages **received and
//! processed by servers**: a broadcast to `n` servers costs `n` processed
//! messages and a point-to-point message costs `1` (paper §6.4). This crate
//! provides the pieces every strategy implementation is built on:
//!
//! * [`ServerId`] / [`Endpoint`] — typed addresses for servers and clients.
//! * [`SimNet`] — an in-process mailbox network with point-to-point
//!   [`SimNet::send`], [`SimNet::broadcast`], and synchronous
//!   request/response [`SimNet::deliver_all`] draining. Messages addressed to
//!   failed servers are dropped (and accounted).
//! * [`MessageCounter`] — the paper's cost model, split by category so
//!   lookup traffic and update traffic can be reported separately.
//! * [`FailureSet`] — which servers are currently crashed, with an
//!   adversarial / scripted injection API.
//! * [`DetRng`] — deterministic seeded randomness with the sampling helpers
//!   the strategies need (random operational server, random `x`-subset,
//!   shuffled probe orders).
//! * [`Topology`] — hop-count graphs for the limited-reachability extension
//!   (paper §7.2).
//!
//! # Example
//!
//! ```
//! use pls_net::{SimNet, ServerId, Endpoint, MsgClass};
//!
//! let mut net: SimNet<&'static str> = SimNet::new(3);
//! net.send(Endpoint::client(0), ServerId::new(1), "store v1", MsgClass::Update)?;
//! net.broadcast(Endpoint::Server(ServerId::new(1)), "store v2", MsgClass::Update)?;
//! let mut seen = Vec::new();
//! net.deliver_all(|_, envelope| seen.push((envelope.to, envelope.msg)));
//! assert_eq!(seen.len(), 4); // 1 p2p + 3 broadcast copies
//! assert_eq!(net.counter().update_messages(), 4);
//! # Ok::<(), pls_net::SendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod error;
mod fault;
mod id;
mod net;
mod rng;
mod topology;

pub use counter::{MessageCounter, MsgClass};
pub use error::SendError;
pub use fault::FailureSet;
pub use id::{Endpoint, ServerId};
pub use net::{Envelope, SimNet};
pub use rng::DetRng;
pub use topology::Topology;
