//! Hop-count topologies for the limited-reachability variation (paper §7.2).
//!
//! In overlay networks like Gnutella a client can only reach servers within
//! a bounded number of hops. [`Topology`] is an undirected graph over the
//! `n` servers plus client attachment points; it answers "which servers are
//! within `d` hops of node `u`?" via precomputable BFS distances.

use std::collections::VecDeque;

use crate::ServerId;

/// An undirected overlay graph over `n` nodes (nodes double as servers).
///
/// # Example
///
/// ```
/// use pls_net::Topology;
/// // A path 0 - 1 - 2 - 3.
/// let mut g = Topology::new(4);
/// g.connect(0, 1);
/// g.connect(1, 2);
/// g.connect(2, 3);
/// assert_eq!(g.distance(0, 3), Some(3));
/// let within: Vec<usize> = g.within_hops(1, 1).map(|s| s.index()).collect();
/// assert_eq!(within, vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// Creates an edgeless topology over `n` nodes.
    pub fn new(n: usize) -> Self {
        Topology { adj: vec![Vec::new(); n] }
    }

    /// A ring topology `0 - 1 - ... - (n-1) - 0`, the classic structured
    /// overlay used in the paper's examples.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (a ring needs at least three nodes).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let mut g = Topology::new(n);
        for i in 0..n {
            g.connect(i, (i + 1) % n);
        }
        g
    }

    /// A random graph where each node gets `degree` random neighbours,
    /// approximating an unstructured Gnutella-style overlay. Uses the
    /// provided RNG for determinism. Self-loops and duplicate edges are
    /// skipped, so actual degrees may be slightly lower.
    pub fn random(n: usize, degree: usize, rng: &mut crate::DetRng) -> Self {
        let mut g = Topology::new(n);
        if n < 2 {
            return g;
        }
        for u in 0..n {
            for _ in 0..degree {
                let v = rng.below(n);
                if v != u {
                    g.connect(u, v);
                }
            }
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge `u - v`. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `u == v`.
    pub fn connect(&mut self, u: usize, v: usize) {
        assert!(u < self.adj.len() && v < self.adj.len(), "node out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
            self.adj[v].push(u);
        }
    }

    /// Neighbours of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbours(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// BFS distances from `u` to every node (`None` = unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn distances_from(&self, u: usize) -> Vec<Option<usize>> {
        assert!(u < self.adj.len(), "node out of range");
        let mut dist = vec![None; self.adj.len()];
        dist[u] = Some(0);
        let mut queue = VecDeque::from([u]);
        while let Some(cur) = queue.pop_front() {
            let d = dist[cur].expect("visited nodes have distances");
            for &next in &self.adj[cur] {
                if dist[next].is_none() {
                    dist[next] = Some(d + 1);
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// Hop distance between two nodes, if connected.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn distance(&self, u: usize, v: usize) -> Option<usize> {
        assert!(v < self.adj.len(), "node out of range");
        self.distances_from(u)[v]
    }

    /// Servers within `d` hops of node `u` (including `u` itself), in
    /// index order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn within_hops(&self, u: usize, d: usize) -> impl Iterator<Item = ServerId> + '_ {
        self.distances_from(u)
            .into_iter()
            .enumerate()
            .filter(move |(_, dist)| matches!(dist, Some(x) if *x <= d))
            .map(|(i, _)| ServerId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;

    #[test]
    fn ring_distances() {
        let g = Topology::ring(6);
        assert_eq!(g.distance(0, 3), Some(3));
        assert_eq!(g.distance(0, 5), Some(1));
        assert_eq!(g.distance(2, 2), Some(0));
    }

    #[test]
    fn disconnected_nodes_are_unreachable() {
        let mut g = Topology::new(4);
        g.connect(0, 1);
        assert_eq!(g.distance(0, 3), None);
        assert_eq!(g.distance(2, 3), None);
    }

    #[test]
    fn within_hops_includes_self() {
        let g = Topology::ring(5);
        let reach: Vec<usize> = g.within_hops(0, 0).map(|s| s.index()).collect();
        assert_eq!(reach, vec![0]);
        let reach1: Vec<usize> = g.within_hops(0, 1).map(|s| s.index()).collect();
        assert_eq!(reach1, vec![0, 1, 4]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Topology::new(3);
        g.connect(0, 1);
        g.connect(0, 1);
        g.connect(1, 0);
        assert_eq!(g.neighbours(0), &[1]);
        assert_eq!(g.neighbours(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Topology::new(2).connect(1, 1);
    }

    #[test]
    fn random_topology_has_no_self_loops() {
        let mut rng = DetRng::seed_from(11);
        let g = Topology::random(20, 3, &mut rng);
        for u in 0..20 {
            assert!(!g.neighbours(u).contains(&u));
        }
    }
}
