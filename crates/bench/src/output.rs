//! Table rendering, CSV emission, and the shared `BENCH_*.json`
//! artifact schema for experiment rows.
//!
//! Every JSON artifact the bench harness writes — `repro --json` and
//! the `loadgen` cluster benchmark alike — goes through
//! [`BenchReport`], so downstream tooling sees one schema:
//!
//! ```json
//! {
//!   "schema": "pls-bench/v3",
//!   "bench": "<name>",
//!   "git_rev": "<rev-parse HEAD or \"unknown\">",
//!   "config": { ... },
//!   "results": ...
//! }
//! ```
//!
//! Schema history: `v2` added the mixed-workload consistency block to
//! `loadgen` results (`staleness` — live staleness gauges, tombstone
//! counters, versions-behind quantiles); `v3` added the `runtime`
//! block (server-side lock contention per site, allocation deltas from
//! the counting allocator, queue-depth gauges). Readers (`pls-bench
//! compare`, CI's bench-smoke) accept older artifacts too: every field
//! kept its name and shape, each version only adds fields.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use pls_telemetry::json::{array, number, Object};

/// A rendered experiment: a title, column headers, and stringified rows.
/// One `Table` turns into both a console table and a CSV file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human-readable heading (printed above the console table).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Row cells, stringified.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let cells: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV next to the other results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl Table {
    /// Renders the rows as a JSON array of objects keyed by column
    /// name, tagged with the table title — the `results` shape
    /// `repro --json` feeds into a [`BenchReport`].
    pub fn to_json(&self) -> String {
        let rows = array(self.rows.iter().map(|row| {
            let mut obj = Object::new();
            for (col, cell) in self.columns.iter().zip(row) {
                // Cells are stringified numbers for the most part;
                // emit them as JSON numbers when they parse back.
                // Re-rendering through `number` keeps the output valid
                // for spellings JSON rejects (".5", "+1", "NaN").
                obj = match cell.parse::<f64>() {
                    Ok(v) if v.is_finite() => obj.field(col, &number(v)),
                    _ => obj.string(col, cell),
                };
            }
            obj.build()
        }));
        Object::new().string("title", &self.title).field("rows", &rows).build()
    }
}

/// The version tag stamped into every artifact. Readers accept this
/// and every earlier tag in [`BENCH_SCHEMAS_ACCEPTED`].
pub const BENCH_SCHEMA: &str = "pls-bench/v3";

/// Schema tags a reader must accept: each version is a strict superset
/// of the one before, so older artifacts (e.g. a baseline committed
/// before the consistency or runtime blocks existed) stay comparable.
pub const BENCH_SCHEMAS_ACCEPTED: [&str; 3] = ["pls-bench/v1", "pls-bench/v2", "pls-bench/v3"];

/// One benchmark run's JSON artifact: name, producing git revision,
/// run configuration, and measured results. [`BenchReport::write`]
/// lands it as `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Benchmark name; the artifact file is `BENCH_<name>.json`.
    pub name: String,
    /// `git rev-parse HEAD` of the tree that produced the numbers.
    pub git_rev: String,
    /// Already-rendered JSON object describing the run configuration.
    pub config: String,
    /// Already-rendered JSON value holding the measured results.
    pub results: String,
}

impl BenchReport {
    /// A report for `name`, stamped with the current git revision.
    /// `config` and `results` must already be valid JSON.
    pub fn new(name: impl Into<String>, config: String, results: String) -> Self {
        BenchReport { name: name.into(), git_rev: git_rev(), config, results }
    }

    /// Renders the artifact body.
    pub fn to_json(&self) -> String {
        Object::new()
            .string("schema", BENCH_SCHEMA)
            .string("bench", &self.name)
            .string("git_rev", &self.git_rev)
            .field("config", &self.config)
            .field("results", &self.results)
            .build()
    }

    /// Writes `BENCH_<name>.json` under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// The current `git rev-parse HEAD`, or `"unknown"` outside a work
/// tree — artifacts are only comparable across runs when tied to the
/// code that produced them.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Formats a float with sensible precision for the tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let rendered = t.render();
        assert!(rendered.contains("# demo"));
        assert!(rendered.contains("long_column"));
        let lines: Vec<&str> = rendered.lines().collect();
        // Header, separator, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2.5\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("pls-bench-test");
        let mut t = Table::new("demo", &["x"]);
        t.row(vec!["7".into()]);
        let path = t.write_csv(&dir, "demo").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "x\n7\n");
    }

    #[test]
    fn table_to_json_types_numeric_cells() {
        let mut t = Table::new("demo", &["strategy", "p50"]);
        t.row(vec!["round:2".into(), "1.5".into()]);
        assert_eq!(
            t.to_json(),
            "{\"title\":\"demo\",\"rows\":[{\"strategy\":\"round:2\",\"p50\":1.5}]}"
        );
    }

    #[test]
    fn bench_report_schema_shape() {
        let report = BenchReport {
            name: "unit".to_string(),
            git_rev: "deadbeef".to_string(),
            config: "{\"n\":3}".to_string(),
            results: "[1,2]".to_string(),
        };
        assert_eq!(
            report.to_json(),
            "{\"schema\":\"pls-bench/v3\",\"bench\":\"unit\",\"git_rev\":\"deadbeef\",\
             \"config\":{\"n\":3},\"results\":[1,2]}"
        );
        assert!(BENCH_SCHEMAS_ACCEPTED.contains(&BENCH_SCHEMA));
        let dir = std::env::temp_dir().join("pls-bench-report-test");
        let path = report.write(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        assert_eq!(std::fs::read_to_string(path).unwrap(), report.to_json());
    }

    #[test]
    fn git_rev_never_panics() {
        // In a checkout this is a 40-char hex rev; elsewhere "unknown".
        // Either way it is non-empty and single-line.
        let rev = git_rev();
        assert!(!rev.is_empty());
        assert!(!rev.contains('\n'));
    }

    #[test]
    fn fnum_precision_tiers() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234567), "0.1235");
        assert_eq!(fnum(12.345), "12.35");
        assert_eq!(fnum(123456.7), "123457");
    }
}
