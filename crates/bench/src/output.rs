//! Table rendering and CSV emission for experiment rows.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rendered experiment: a title, column headers, and stringified rows.
/// One `Table` turns into both a console table and a CSV file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human-readable heading (printed above the console table).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Row cells, stringified.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let cells: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV next to the other results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float with sensible precision for the tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let rendered = t.render();
        assert!(rendered.contains("# demo"));
        assert!(rendered.contains("long_column"));
        let lines: Vec<&str> = rendered.lines().collect();
        // Header, separator, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2.5\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("pls-bench-test");
        let mut t = Table::new("demo", &["x"]);
        t.row(vec!["7".into()]);
        let path = t.write_csv(&dir, "demo").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "x\n7\n");
    }

    #[test]
    fn fnum_precision_tiers() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234567), "0.1235");
        assert_eq!(fnum(12.345), "12.35");
        assert_eq!(fnum(123456.7), "123457");
    }
}
