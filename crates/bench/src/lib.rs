//! Support library for the `repro` experiment harness: output formatting
//! and CSV writing shared by the binary and the benches, plus the
//! `pls-bench compare` regression gate's arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod oracle;
pub mod output;
