//! Support library for the `repro` experiment harness: output formatting
//! and CSV writing shared by the binary and the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod output;
