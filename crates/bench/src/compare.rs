//! The `pls-bench compare` regression gate as a library: artifact
//! loading, metric extraction, and the per-metric verdicts, factored
//! out of the binary so the gate's arithmetic is unit-testable — a CI
//! gate nobody has ever seen fire is a gate that may not work.
//!
//! `pls-bench/v1`, `v2`, and `v3` artifacts are all accepted (each
//! version only adds fields — `v2` the consistency block, `v3` the
//! server-side `runtime` block), so a baseline committed before a
//! schema bump stays comparable. Metrics present in only one artifact
//! (e.g. `runtime.*` against a pre-v3 baseline) are reported as `n/a`
//! and never counted as regressions.

use crate::output::BENCH_SCHEMAS_ACCEPTED;
use pls_telemetry::json::{parse, Value};

/// One compared metric: where it lives in `results`, whether bigger is
/// better, and how it prints.
struct Metric {
    label: &'static str,
    /// Path under `results`, e.g. `["latency_us", "p50"]`.
    path: &'static [&'static str],
    /// `true` when a larger value is an improvement (throughput);
    /// `false` when it is a regression (latency, probe counts).
    higher_is_better: bool,
}

const METRICS: [Metric; 7] = [
    Metric { label: "latency p50 (us)", path: &["latency_us", "p50"], higher_is_better: false },
    Metric { label: "latency p99 (us)", path: &["latency_us", "p99"], higher_is_better: false },
    Metric { label: "throughput (rps)", path: &["throughput_rps"], higher_is_better: true },
    Metric {
        label: "probes/lookup (client)",
        path: &["probes", "per_lookup_mean"],
        higher_is_better: false,
    },
    Metric {
        label: "probes/lookup (servers)",
        path: &["probes", "per_lookup_from_servers"],
        higher_is_better: false,
    },
    Metric {
        label: "engines lock wait p99 (us)",
        path: &["runtime", "locks", "engines", "wait_us", "p99"],
        higher_is_better: false,
    },
    Metric {
        label: "allocs/lookup (servers)",
        path: &["runtime", "alloc", "allocs_per_lookup"],
        higher_is_better: false,
    },
];

/// One row of the comparison table.
#[derive(Debug)]
pub struct MetricRow {
    /// Human label, e.g. `latency p99 (us)`.
    pub label: &'static str,
    /// Baseline reading; `None` when the artifact lacks the metric.
    pub baseline: Option<f64>,
    /// Current reading; `None` when the artifact lacks the metric.
    pub current: Option<f64>,
    /// Signed percentage change as shown (`+` = current is larger);
    /// 0 when either side is missing.
    pub shown_pct: f64,
    /// Whether this row regressed beyond the threshold (in the
    /// metric's "worse" direction).
    pub regressed: bool,
}

/// The verdict over every metric, plus the rendered table.
#[derive(Debug)]
pub struct CompareOutcome {
    /// One row per known metric, in declaration order.
    pub rows: Vec<MetricRow>,
    /// Rows present in both artifacts.
    pub compared: usize,
    /// Rows regressed beyond the threshold.
    pub regressions: usize,
    /// The human-readable table (header + rows + verdict line).
    pub report: String,
}

/// Loads an artifact, checks its schema tag, and returns the document.
pub fn load_artifact(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or(format!("{path}: missing `schema` field"))?;
    if !BENCH_SCHEMAS_ACCEPTED.contains(&schema) {
        return Err(format!(
            "{path}: unsupported schema `{schema}` (accepted: {})",
            BENCH_SCHEMAS_ACCEPTED.join(", ")
        ));
    }
    Ok(doc)
}

/// Walks `results.<path...>` to a number.
fn lookup(doc: &Value, path: &[&str]) -> Option<f64> {
    let mut v = doc.get("results")?;
    for key in path {
        v = v.get(key)?;
    }
    v.as_f64()
}

/// `bench-name @ git-rev` for an artifact's provenance line.
pub fn describe(doc: &Value) -> String {
    let bench = doc.get("bench").and_then(Value::as_str).unwrap_or("?");
    let rev = doc.get("git_rev").and_then(Value::as_str).unwrap_or("?");
    format!("{bench} @ {}", &rev[..rev.len().min(12)])
}

/// Compares two loaded artifacts: every known metric found in both
/// documents gets a verdict against `max_regress_pct` (in the metric's
/// "worse" direction). Errors when *no* metric is comparable — that
/// means the artifacts don't overlap and the gate would silently pass.
pub fn compare_docs(
    baseline: &Value,
    current: &Value,
    max_regress_pct: f64,
) -> Result<CompareOutcome, String> {
    use std::fmt::Write as _;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{:<26} {:>12} {:>12} {:>9}  verdict (threshold {max_regress_pct}%)",
        "metric", "baseline", "current", "delta"
    );
    let mut rows = Vec::with_capacity(METRICS.len());
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for m in &METRICS {
        let b = lookup(baseline, m.path);
        let c = lookup(current, m.path);
        let (Some(b), Some(c)) = (b, c) else {
            let _ = writeln!(report, "{:<26} {:>12} {:>12} {:>9}  n/a", m.label, "-", "-", "-");
            rows.push(MetricRow {
                label: m.label,
                baseline: b,
                current: c,
                shown_pct: 0.0,
                regressed: false,
            });
            continue;
        };
        compared += 1;
        // Regression percentage in the "worse" direction; guarded for
        // zero baselines (a 0 -> 0.1 move is noise, not infinity).
        let delta_pct = if b.abs() < f64::EPSILON {
            0.0
        } else if m.higher_is_better {
            (b - c) / b * 100.0
        } else {
            (c - b) / b * 100.0
        };
        let regressed = delta_pct > max_regress_pct;
        if regressed {
            regressions += 1;
        }
        let shown_pct = (c - b) / if b.abs() < f64::EPSILON { 1.0 } else { b } * 100.0;
        let _ = writeln!(
            report,
            "{:<26} {:>12.2} {:>12.2} {:>+8.1}%  {}",
            m.label,
            b,
            c,
            shown_pct,
            if regressed { "REGRESSED" } else { "ok" },
        );
        rows.push(MetricRow {
            label: m.label,
            baseline: Some(b),
            current: Some(c),
            shown_pct,
            regressed,
        });
    }
    if compared == 0 {
        return Err("no comparable metrics found in both artifacts".to_string());
    }
    if regressions > 0 {
        let _ = writeln!(
            report,
            "{regressions} metric{} regressed beyond {max_regress_pct}%",
            if regressions == 1 { "" } else { "s" },
        );
    } else {
        let _ = writeln!(report, "no regressions beyond {max_regress_pct}%");
    }
    Ok(CompareOutcome { rows, compared, regressions, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A full-shape artifact document with every compared metric set.
    fn artifact(p50: f64, p99: f64, rps: f64, probes: f64, wait_p99: f64, allocs: f64) -> Value {
        let text = format!(
            r#"{{
              "schema": "pls-bench/v3",
              "bench": "test",
              "git_rev": "deadbeef",
              "results": {{
                "latency_us": {{"p50": {p50}, "p99": {p99}}},
                "throughput_rps": {rps},
                "probes": {{"per_lookup_mean": {probes},
                            "per_lookup_from_servers": {probes}}},
                "runtime": {{
                  "locks": {{"engines": {{"wait_us": {{"p99": {wait_p99}}}}}}},
                  "alloc": {{"allocs_per_lookup": {allocs}}}
                }}
              }}
            }}"#
        );
        parse(&text).expect("well-formed test artifact")
    }

    #[test]
    fn identical_artifacts_pass_clean() {
        let doc = artifact(120.0, 900.0, 5000.0, 2.0, 45.0, 30.0);
        let out = compare_docs(&doc, &doc, 25.0).unwrap();
        assert_eq!(out.regressions, 0);
        assert_eq!(out.compared, 7);
        assert!(out.report.contains("no regressions beyond 25%"), "{}", out.report);
    }

    #[test]
    fn injected_latency_regression_fails_the_gate() {
        let baseline = artifact(120.0, 900.0, 5000.0, 2.0, 45.0, 30.0);
        // p99 tripled: far beyond any sane threshold.
        let current = artifact(120.0, 2700.0, 5000.0, 2.0, 45.0, 30.0);
        let out = compare_docs(&baseline, &current, 25.0).unwrap();
        assert_eq!(out.regressions, 1);
        let row = out.rows.iter().find(|r| r.label == "latency p99 (us)").unwrap();
        assert!(row.regressed);
        assert!((row.shown_pct - 200.0).abs() < 1e-9, "{}", row.shown_pct);
        assert!(out.report.contains("REGRESSED"), "{}", out.report);
    }

    #[test]
    fn throughput_regresses_downward() {
        let baseline = artifact(120.0, 900.0, 5000.0, 2.0, 45.0, 30.0);
        let current = artifact(120.0, 900.0, 2000.0, 2.0, 45.0, 30.0);
        let out = compare_docs(&baseline, &current, 25.0).unwrap();
        let row = out.rows.iter().find(|r| r.label == "throughput (rps)").unwrap();
        assert!(row.regressed, "{:?}", row);
        // ...and a throughput *improvement* never regresses.
        let better = artifact(120.0, 900.0, 9000.0, 2.0, 45.0, 30.0);
        let out = compare_docs(&baseline, &better, 25.0).unwrap();
        assert_eq!(out.regressions, 0);
    }

    #[test]
    fn zero_baseline_never_counts_as_a_regression() {
        // A zeroed bootstrap baseline must not turn every nonzero
        // reading into an infinite regression.
        let baseline = artifact(0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let current = artifact(120.0, 900.0, 5000.0, 2.0, 45.0, 30.0);
        let out = compare_docs(&baseline, &current, 25.0).unwrap();
        assert_eq!(out.regressions, 0, "{}", out.report);
    }

    #[test]
    fn metrics_missing_from_one_side_are_na_not_regressions() {
        let baseline = parse(
            r#"{"schema": "pls-bench/v1", "bench": "old", "git_rev": "abc",
                "results": {"latency_us": {"p50": 100, "p99": 800},
                            "throughput_rps": 4000}}"#,
        )
        .unwrap();
        let current = artifact(110.0, 850.0, 4100.0, 2.0, 45.0, 30.0);
        let out = compare_docs(&baseline, &current, 25.0).unwrap();
        assert_eq!(out.compared, 3);
        assert_eq!(out.regressions, 0);
        assert!(out.report.contains("n/a"), "{}", out.report);
    }

    #[test]
    fn disjoint_artifacts_error_instead_of_passing_silently() {
        let empty = parse(r#"{"schema": "pls-bench/v3", "results": {}}"#).unwrap();
        let current = artifact(110.0, 850.0, 4100.0, 2.0, 45.0, 30.0);
        assert!(compare_docs(&empty, &current, 25.0).is_err());
    }

    #[test]
    fn describe_reads_provenance() {
        let doc = artifact(1.0, 2.0, 3.0, 4.0, 5.0, 6.0);
        assert_eq!(describe(&doc), "test @ deadbeef");
    }
}
