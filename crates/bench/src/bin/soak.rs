//! `soak` — a fault-schedule soak harness with a built-in invariant
//! auditor.
//!
//! ```text
//! soak --bin-dir DIR [--out DIR] [--name NAME] [--phase-s S]
//!      [--base-port P] [--concurrency N] [--seed S] [--data-dir DIR]
//!
//!   --bin-dir      directory holding the pls-server and pls-chaos
//!                  binaries (e.g. target/release)
//!   --out          artifact directory (default results)
//!   --name         artifact name: writes OUT/SOAK_<name>.json
//!                  (default soak)
//!   --phase-s      seconds per phase (default 18; nine phases)
//!   --base-port    first port of the harness's range (default 7811)
//!   --concurrency  closed-loop load workers (default 4)
//!   --seed         workload seed (default 42)
//!   --data-dir     servers' durable state (default /tmp/pls-soak;
//!                  wiped at start)
//! ```
//!
//! The harness boots a 2-server durable cluster (`--shards 2`, short
//! SLO windows, 500 ms observatory self-scrape) with server 1 standing
//! behind a `pls-chaos` proxy *from server 0's point of view* (server
//! 0's peer list carries the proxy port; clients dial both servers
//! directly). A third server joins the live cluster partway through.
//! The load runs through nine scheduled phases:
//!
//!   baseline  → everything healthy
//!   blackhole → the proxy swallows server 0's internal sends, so
//!               replication fails and error budgets burn
//!   restart   → proxy restored, server 1 killed with SIGKILL and
//!               restarted from its WAL
//!   recovery  → everything healthy again; anti-entropy repairs
//!   join      → a third server joins the live cluster (`--join`),
//!               placement groups re-home onto it via migration
//!   drain1    → server 1 is retired gracefully (`drain`); survivors
//!               pull its partitions before its process is killed
//!   crash0    → server 0 SIGKILLed mid-churn and restarted from its
//!               WAL into the post-churn membership
//!   settle    → everything healthy; burn rates decay
//!   drain     → load stops; the auditor asserts convergence
//!
//! Throughout, an auditor samples every live member's Metrics RPC and,
//! at the end, its `GET /debug/timeline`, and renders verdicts:
//! cumulative counters never go backwards (modulo the scheduled
//! restarts), some SLO burn rate was **observed burning during the
//! fault**, `pls_queue_depth{queue="inflight"}` drains to 0 once load
//! stops, `pls_live_staleness` converges back to 1.0, burn rates decay
//! post-recovery, the server-side timeline's cumulative series agrees
//! with Metrics-RPC readings taken around it (no drift), and — for the
//! churn phases — the membership epoch converges on every live member,
//! entries actually migrated (`pls_migration_entries_total` > 0) with
//! the migration backlog draining to zero, and **no seeded entry is
//! lost** across the join + drain + crash schedule. The run lands a
//! `pls-soak/v1` artifact and exits nonzero if any audit fails.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pls_bench::output::git_rev;
use pls_cluster::{parse_spec, Client, ClientConfig, Timeouts};
use pls_telemetry::json::{array, parse, Object, Value};
use pls_telemetry::snapshot::parse_labels;
use pls_telemetry::MetricsSnapshot;

/// Keys the workload cycles over.
const KEYS: u64 = 24;
/// Observatory self-scrape interval handed to the servers, and the
/// auditor's own sampling cadence.
const SCRAPE_MS: u64 = 500;
/// Fast SLO window handed to the servers — short, so burn rates react
/// within a phase and decay within the drain.
const SLO_FAST_S: u64 = 5;
/// Slow SLO window handed to the servers.
const SLO_SLOW_S: u64 = 20;

struct Opts {
    bin_dir: PathBuf,
    out_dir: PathBuf,
    name: String,
    phase_s: u64,
    base_port: u16,
    concurrency: usize,
    seed: u64,
    data_dir: PathBuf,
}

fn parse_args() -> Result<Opts, String> {
    let mut bin_dir: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("results");
    let mut name = "soak".to_string();
    let mut phase_s = 18u64;
    let mut base_port = 7811u16;
    let mut concurrency = 4usize;
    let mut seed = 42u64;
    let mut data_dir = PathBuf::from("/tmp/pls-soak");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--bin-dir" => bin_dir = Some(value("--bin-dir")?.into()),
            "--out" => out_dir = value("--out")?.into(),
            "--name" => name = value("--name")?,
            "--phase-s" => {
                phase_s = value("--phase-s")?.parse().map_err(|e| format!("--phase-s: {e}"))?;
            }
            "--base-port" => {
                base_port =
                    value("--base-port")?.parse().map_err(|e| format!("--base-port: {e}"))?;
            }
            "--concurrency" => {
                concurrency =
                    value("--concurrency")?.parse().map_err(|e| format!("--concurrency: {e}"))?;
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--data-dir" => data_dir = value("--data-dir")?.into(),
            "--help" | "-h" => {
                return Err("usage: soak --bin-dir DIR [--out DIR] [--name NAME] [--phase-s S] \
                     [--base-port P] [--concurrency N] [--seed S] [--data-dir DIR]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let bin_dir = bin_dir.ok_or("--bin-dir is required (e.g. target/release)")?;
    Ok(Opts {
        bin_dir,
        out_dir,
        name,
        phase_s: phase_s.max(5),
        base_port,
        concurrency: concurrency.max(1),
        seed,
        data_dir,
    })
}

/// The spawned cluster processes. Dropping the struct kills whatever
/// is still running, so no failure path leaks servers.
struct Procs {
    server0: Option<Child>,
    server1: Option<Child>,
    server2: Option<Child>,
    proxy: Option<Child>,
}

impl Procs {
    fn new() -> Self {
        Procs { server0: None, server1: None, server2: None, proxy: None }
    }

    fn slots(&mut self) -> [&mut Option<Child>; 4] {
        [&mut self.server0, &mut self.server1, &mut self.server2, &mut self.proxy]
    }
}

impl Drop for Procs {
    fn drop(&mut self) {
        for slot in self.slots() {
            if let Some(child) = slot.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn kill_slot(slot: &mut Option<Child>) {
    if let Some(mut child) = slot.take() {
        // std's kill is SIGKILL on unix: no shutdown path runs, which
        // is the point for the restart phase.
        let _ = child.kill();
        let _ = child.wait();
    }
}

struct Ports {
    server: [SocketAddr; 3],
    metrics: [SocketAddr; 3],
    proxy: SocketAddr,
}

fn ports(base: u16) -> Ports {
    let at = |off: u16| format!("127.0.0.1:{}", base + off).parse().expect("loopback addr");
    Ports { server: [at(0), at(1), at(3)], metrics: [at(50), at(51), at(52)], proxy: at(2) }
}

/// The flags shared by every server the harness spawns.
fn server_command(o: &Opts, p: &Ports, index: usize) -> Command {
    let mut cmd = Command::new(o.bin_dir.join("pls-server"));
    cmd.args(["--strategy", "round:2"])
        .args(["--seed", &o.seed.to_string(), "--shards", "2"])
        .args(["--data-dir", &o.data_dir.join(index.to_string()).to_string_lossy()])
        .args(["--checkpoint-every", "32", "--antientropy-ms", "1000"])
        .args(["--staleness-ms", "500", "--tombstone-ttl-ms", "60000"])
        .args(["--scrape-ms", &SCRAPE_MS.to_string()])
        .args(["--slo-fast-s", &SLO_FAST_S.to_string(), "--slo-slow-s", &SLO_SLOW_S.to_string()])
        .args(["--slo-latency-ms", "50"])
        .args(["--rpc-timeout-ms", "400", "--op-budget-ms", "3000"])
        .args(["--metrics-addr", &p.metrics[index].to_string()])
        .args(["--log", "warn"]);
    cmd
}

fn spawn_server(o: &Opts, p: &Ports, index: usize) -> Result<Child, String> {
    // Server 0 reaches server 1 through the chaos proxy; server 1's
    // own slot carries its real port (a server never dials itself
    // through the proxy).
    let peers = match index {
        0 => format!("{},{}", p.server[0], p.proxy),
        _ => format!("{},{}", p.server[0], p.server[1]),
    };
    server_command(o, p, index)
        .args(["--index", &index.to_string(), "--peers", &peers])
        .spawn()
        .map_err(|e| format!("spawn pls-server {index}: {e}"))
}

/// Spawns the third server as a **live joiner**: it asks server 0 to
/// admit it and boots from the membership view the cluster hands back.
fn spawn_joiner(o: &Opts, p: &Ports) -> Result<Child, String> {
    server_command(o, p, 2)
        .args(["--join", &p.server[0].to_string(), "--advertise", &p.server[2].to_string()])
        .spawn()
        .map_err(|e| format!("spawn pls-server joiner: {e}"))
}

/// Spawns the chaos proxy in the given mode, retrying briefly: right
/// after a kill the listen port can still be settling.
async fn spawn_proxy(o: &Opts, p: &Ports, mode: &str) -> Result<Child, String> {
    for _attempt in 0..10 {
        let mut child = Command::new(o.bin_dir.join("pls-chaos"))
            .args(["--listen", &p.proxy.to_string(), "--upstream", &p.server[1].to_string()])
            .args(["--mode", mode, "--log", "warn"])
            .spawn()
            .map_err(|e| format!("spawn pls-chaos: {e}"))?;
        tokio::time::sleep(Duration::from_millis(300)).await;
        match child.try_wait() {
            Ok(None) => return Ok(child),
            Ok(Some(_)) => continue,
            Err(e) => return Err(format!("pls-chaos: {e}")),
        }
    }
    Err("pls-chaos kept exiting at startup (listen port busy?)".to_string())
}

/// One audit verdict.
struct Audit {
    name: &'static str,
    pass: bool,
    detail: String,
}

impl Audit {
    fn new(name: &'static str, pass: bool, detail: String) -> Self {
        println!("audit {name}: {} — {detail}", if pass { "PASS" } else { "FAIL" });
        Audit { name, pass, detail }
    }
}

/// What one load phase looked like from the auditor's chair.
struct PhaseStat {
    name: &'static str,
    planned_s: u64,
    ops: u64,
    client_errors: u64,
    samples: u64,
    /// Highest fast-window burn rate seen per objective.
    max_burn_fast: BTreeMap<String, f64>,
}

/// Samples every live member's Metrics RPC: tracks counter
/// monotonicity and the per-phase burn-rate high-water marks.
struct Sampler {
    prev: BTreeMap<u64, BTreeMap<String, u64>>,
    regressions: Vec<String>,
    samples: u64,
    max_burn_fast: BTreeMap<String, f64>,
}

impl Sampler {
    fn new() -> Self {
        Sampler {
            prev: BTreeMap::new(),
            regressions: Vec::new(),
            samples: 0,
            max_burn_fast: BTreeMap::new(),
        }
    }

    /// Forget a member's counter baseline — called when the harness
    /// itself restarts the process, where counters legitimately reset.
    fn reanchor(&mut self, member: u64) {
        self.prev.remove(&member);
    }

    async fn sample(&mut self, audit: &Client, members: &[u64], phase: &str) {
        for &member in members {
            let Ok(snap) = audit.metrics_of(member as usize, false).await else { continue };
            self.samples += 1;
            let cur: BTreeMap<String, u64> =
                snap.counters.iter().map(|(n, v)| (n.clone(), *v)).collect();
            if let Some(prev) = self.prev.get(&member) {
                for (name, was) in prev {
                    if let Some(now) = cur.get(name) {
                        if now < was {
                            self.regressions.push(format!(
                                "[{phase}] member {member}: {name} went {was} -> {now}"
                            ));
                        }
                    }
                }
            }
            self.prev.insert(member, cur);
            for (name, value) in &snap.gauges {
                let Some((family, labels)) = parse_labels(name) else { continue };
                if family != "pls_slo_burn_rate" {
                    continue;
                }
                let window = labels.iter().find(|(k, _)| k == "window").map(|(_, v)| v.as_str());
                if window != Some("fast") {
                    continue;
                }
                let Some((_, slo)) = labels.iter().find(|(k, _)| k == "slo") else { continue };
                let entry = self.max_burn_fast.entry(slo.clone()).or_insert(0.0);
                if *value > *entry {
                    *entry = *value;
                }
            }
        }
    }
}

/// Runs one load phase: samples on a fixed cadence until the planned
/// duration elapses, then reports the phase's stats.
async fn run_phase(
    name: &'static str,
    planned_s: u64,
    sampler: &mut Sampler,
    audit: &Client,
    members: &[u64],
    ops: &AtomicU64,
    errors: &AtomicU64,
) -> PhaseStat {
    println!("phase {name}: {planned_s}s");
    let ops_at = ops.load(Ordering::Relaxed);
    let errors_at = errors.load(Ordering::Relaxed);
    let samples_at = sampler.samples;
    sampler.max_burn_fast.clear();
    let deadline = Instant::now() + Duration::from_secs(planned_s);
    while Instant::now() < deadline {
        sampler.sample(audit, members, name).await;
        tokio::time::sleep(Duration::from_millis(SCRAPE_MS)).await;
    }
    PhaseStat {
        name,
        planned_s,
        ops: ops.load(Ordering::Relaxed) - ops_at,
        client_errors: errors.load(Ordering::Relaxed) - errors_at,
        samples: sampler.samples - samples_at,
        max_burn_fast: sampler.max_burn_fast.clone(),
    }
}

/// Minimal HTTP/1.1 GET returning the response body.
async fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    let mut stream =
        tokio::net::TcpStream::connect(addr).await.map_err(|e| format!("{addr}: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).await.map_err(|e| format!("{addr}: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).await.map_err(|e| format!("{addr}: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    text.split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or(format!("{addr}: no body in response"))
}

fn inflight(snap: &MetricsSnapshot) -> f64 {
    snap.gauge("pls_queue_depth{queue=\"inflight\"}").unwrap_or(0.0)
}

/// Polls until every live member reports zero inflight requests.
async fn audit_inflight_drains(audit: &Client, members: &[u64], deadline_s: u64) -> Audit {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(deadline_s);
    let mut last: BTreeMap<u64, f64> = BTreeMap::new();
    loop {
        let mut all_zero = true;
        for &member in members {
            match audit.metrics_of(member as usize, false).await {
                Ok(snap) => {
                    let depth = inflight(&snap);
                    last.insert(member, depth);
                    if depth != 0.0 {
                        all_zero = false;
                    }
                }
                Err(_) => all_zero = false,
            }
        }
        if all_zero {
            return Audit::new(
                "inflight_drains_to_zero",
                true,
                format!(
                    "all {} members at 0 inflight after {:.1}s",
                    members.len(),
                    started.elapsed().as_secs_f64()
                ),
            );
        }
        if Instant::now() >= deadline {
            return Audit::new(
                "inflight_drains_to_zero",
                false,
                format!("still nonzero after {deadline_s}s: {last:?}"),
            );
        }
        tokio::time::sleep(Duration::from_millis(SCRAPE_MS)).await;
    }
}

/// Polls until every `pls_live_staleness{strategy,t}` series on every
/// live member reads ≥ 0.999 — the system has observably converged
/// back to fresh after the fault schedule.
async fn audit_staleness_converges(audit: &Client, members: &[u64], deadline_s: u64) -> Audit {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(deadline_s);
    let mut last_worst = f64::NAN;
    loop {
        let mut worst = f64::INFINITY;
        let mut series = 0usize;
        let mut reachable = 0usize;
        for &member in members {
            let Ok(snap) = audit.metrics_of(member as usize, false).await else { continue };
            reachable += 1;
            for (name, value) in &snap.gauges {
                let Some((family, _)) = parse_labels(name) else { continue };
                if family == "pls_live_staleness" {
                    series += 1;
                    worst = worst.min(*value);
                }
            }
        }
        if reachable == members.len() && series > 0 && worst >= 0.999 {
            return Audit::new(
                "staleness_converges_to_one",
                true,
                format!(
                    "{series} series all >= 0.999 after {:.1}s",
                    started.elapsed().as_secs_f64()
                ),
            );
        }
        if worst.is_finite() {
            last_worst = worst;
        }
        if Instant::now() >= deadline {
            return Audit::new(
                "staleness_converges_to_one",
                false,
                format!("worst staleness {last_worst} after {deadline_s}s ({series} series)"),
            );
        }
        tokio::time::sleep(Duration::from_millis(SCRAPE_MS)).await;
    }
}

/// Brackets one `GET /debug/timeline` read between two Metrics-RPC
/// reads: every monotone counter's timeline value must land inside
/// the RPC interval, or the two observability paths have drifted.
async fn audit_timeline_agrees(audit: &Client, p: &Ports, members: &[u64]) -> Audit {
    // Family prefixes mirror the `series` block of `timeline_json`.
    const COUNTERS: [(&str, &str); 3] = [
        ("probes", "pls_probes_total"),
        ("wal_appends", "pls_wal_appends_total"),
        ("internal_sent", "pls_internal_sent_total"),
    ];
    let mut violations = Vec::new();
    for &member in members {
        let s1 = match audit.metrics_of(member as usize, false).await {
            Ok(snap) => snap,
            Err(e) => {
                return Audit::new(
                    "timeline_agrees_with_rpc",
                    false,
                    format!("member {member} unreachable: {e}"),
                )
            }
        };
        // Wait out at least two scrape intervals so the timeline holds
        // a window newer than the first RPC read.
        tokio::time::sleep(Duration::from_millis(SCRAPE_MS * 2 + 200)).await;
        let latest = match http_get(p.metrics[member as usize], "/debug/timeline")
            .await
            .and_then(|body| parse(&body).map_err(|e| format!("timeline JSON: {e}")))
        {
            Ok(doc) => {
                match doc.get("series").and_then(Value::as_array).and_then(|s| s.last().cloned()) {
                    Some(latest) => latest,
                    None => {
                        return Audit::new(
                            "timeline_agrees_with_rpc",
                            false,
                            format!("member {member}: timeline has no series"),
                        )
                    }
                }
            }
            Err(e) => {
                return Audit::new(
                    "timeline_agrees_with_rpc",
                    false,
                    format!("member {member}: {e}"),
                )
            }
        };
        let s2 = match audit.metrics_of(member as usize, false).await {
            Ok(snap) => snap,
            Err(e) => {
                return Audit::new(
                    "timeline_agrees_with_rpc",
                    false,
                    format!("member {member} unreachable: {e}"),
                )
            }
        };
        for (key, family) in COUNTERS {
            let lo = s1.counter_sum(family);
            let hi = s2.counter_sum(family);
            let Some(w) = latest.get(key).and_then(Value::as_u64) else {
                violations.push(format!("member {member}: series lacks `{key}`"));
                continue;
            };
            if !(lo..=hi).contains(&w) {
                violations
                    .push(format!("member {member}: {key} timeline={w} outside rpc [{lo}, {hi}]"));
            }
        }
    }
    if violations.is_empty() {
        Audit::new(
            "timeline_agrees_with_rpc",
            true,
            "all timeline counters inside their RPC brackets".to_string(),
        )
    } else {
        Audit::new("timeline_agrees_with_rpc", false, violations.join("; "))
    }
}

/// After recovery + drain, no objective should still be burning its
/// fast window.
async fn audit_burn_stopped(audit: &Client, members: &[u64]) -> Audit {
    let mut worst: Option<(String, f64)> = None;
    for &member in members {
        let Ok(snap) = audit.metrics_of(member as usize, false).await else {
            return Audit::new(
                "burn_stops_post_recovery",
                false,
                format!("member {member} unreachable"),
            );
        };
        for (name, value) in &snap.gauges {
            let Some((family, labels)) = parse_labels(name) else { continue };
            if family != "pls_slo_burn_rate" {
                continue;
            }
            if labels.iter().any(|(k, v)| k == "window" && v == "fast")
                && worst.as_ref().is_none_or(|(_, w)| value > w)
            {
                worst = Some((format!("member {member} {name}"), *value));
            }
        }
    }
    match worst {
        Some((name, value)) if value >= 0.5 => Audit::new(
            "burn_stops_post_recovery",
            false,
            format!("{name} still burning at {value:.2}"),
        ),
        Some((_, value)) => Audit::new(
            "burn_stops_post_recovery",
            true,
            format!("worst fast burn {value:.2} < 0.5"),
        ),
        None => {
            Audit::new("burn_stops_post_recovery", false, "no burn gauges exported".to_string())
        }
    }
}

/// Polls until every live member's `pls_membership_epoch` gauge has
/// reached the audited epoch — gossip has carried the churned view to
/// everyone, including the crash-restarted server that booted from its
/// stale bootstrap peer list.
async fn audit_epoch_converged(
    audit: &Client,
    members: &[u64],
    want: u64,
    deadline_s: u64,
) -> Audit {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(deadline_s);
    let mut lagging = String::new();
    loop {
        lagging.clear();
        let mut converged = 0usize;
        for &member in members {
            let epoch = match audit.metrics_of(member as usize, false).await {
                Ok(snap) => snap.gauge("pls_membership_epoch").unwrap_or(0.0),
                Err(_) => f64::NAN,
            };
            if epoch == want as f64 {
                converged += 1;
            } else {
                lagging.push_str(&format!(" member {member} at {epoch}"));
            }
        }
        if converged == members.len() {
            return Audit::new(
                "membership_epoch_converges",
                true,
                format!(
                    "all {} members at epoch {want} after {:.1}s",
                    members.len(),
                    started.elapsed().as_secs_f64()
                ),
            );
        }
        if Instant::now() >= deadline {
            return Audit::new(
                "membership_epoch_converges",
                false,
                format!("after {deadline_s}s, want epoch {want}:{lagging}"),
            );
        }
        tokio::time::sleep(Duration::from_millis(SCRAPE_MS)).await;
    }
}

/// Polls until migration is both *observed* (entries actually moved:
/// `pls_migration_entries_total` summed over the cluster is nonzero)
/// and *finished* (every member's `pls_migration_pending` backlog
/// gauge reads zero).
async fn audit_migration_completes(audit: &Client, members: &[u64], deadline_s: u64) -> Audit {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(deadline_s);
    let mut last = (0u64, f64::NAN);
    loop {
        let mut moved = 0u64;
        let mut backlog = 0.0f64;
        let mut reachable = 0usize;
        for &member in members {
            let Ok(snap) = audit.metrics_of(member as usize, false).await else { continue };
            reachable += 1;
            moved += snap.counter_sum("pls_migration_entries_total");
            backlog += snap.gauge("pls_migration_pending").unwrap_or(0.0);
        }
        last = (moved, backlog);
        if reachable == members.len() && moved > 0 && backlog == 0.0 {
            return Audit::new(
                "migration_moves_entries_and_drains",
                true,
                format!(
                    "{moved} entries migrated, backlog 0 after {:.1}s",
                    started.elapsed().as_secs_f64()
                ),
            );
        }
        if Instant::now() >= deadline {
            return Audit::new(
                "migration_moves_entries_and_drains",
                false,
                format!("after {deadline_s}s: {} entries migrated, backlog {}", last.0, last.1),
            );
        }
        tokio::time::sleep(Duration::from_millis(SCRAPE_MS)).await;
    }
}

/// Re-reads every seeded key through a fresh client and checks all
/// four seed entries survived the join + drain + crash schedule.
/// Workers only ever delete entries they added themselves, so a
/// missing seed entry can only mean churn lost (or a tombstone screen
/// failure resurrected-then-retrimmed) state.
async fn audit_no_seed_lost(p: &Ports, seed: u64) -> Audit {
    let mut reader = Client::connect(client_config(p, seed ^ 0xD00D));
    let _ = reader.refresh_membership().await;
    let mut missing = Vec::new();
    for k in 0..KEYS {
        let key = format!("soak/k{k}");
        // t = 64 far exceeds the population, so the lookup merges every
        // reachable member's holdings without trimming.
        match reader.partial_lookup(key.as_bytes(), 64).await {
            Ok(found) => {
                for e in 0..4u32 {
                    let want = format!("seed-{e}").into_bytes();
                    if !found.contains(&want) {
                        missing.push(format!("{key}: seed-{e}"));
                    }
                }
            }
            Err(err) => missing.push(format!("{key}: lookup failed: {err}")),
        }
    }
    if missing.is_empty() {
        Audit::new(
            "no_seeded_entry_lost",
            true,
            format!("all {KEYS} keys still hold their 4 seed entries"),
        )
    } else {
        let shown = missing.iter().take(6).cloned().collect::<Vec<_>>().join("; ");
        let more = if missing.len() > 6 { "; …" } else { "" };
        Audit::new(
            "no_seeded_entry_lost",
            false,
            format!("{} seed entries missing: {shown}{more}", missing.len()),
        )
    }
}

/// Polls the cluster's membership RPC through the audit client until
/// the view reaches epoch `want`, returning that view's member ids.
async fn await_epoch(audit: &mut Client, want: u64, deadline_s: u64) -> Result<Vec<u64>, String> {
    let deadline = Instant::now() + Duration::from_secs(deadline_s);
    loop {
        let _ = audit.refresh_membership().await;
        let (epoch, members) = audit.membership_view();
        if epoch >= want {
            return Ok(members.into_iter().map(|(id, _)| id).collect());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "membership stuck at epoch {epoch} (want {want}) after {deadline_s}s"
            ));
        }
        tokio::time::sleep(Duration::from_millis(250)).await;
    }
}

/// Waits until every named member answers its status RPC.
async fn await_cluster_up(audit: &Client, members: &[u64], deadline_s: u64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(deadline_s);
    loop {
        let mut up = 0;
        for &member in members {
            if audit.status_of(member as usize).await.is_ok() {
                up += 1;
            }
        }
        if up == members.len() {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "cluster not up after {deadline_s}s ({up}/{} servers)",
                members.len()
            ));
        }
        tokio::time::sleep(Duration::from_millis(250)).await;
    }
}

fn client_config(p: &Ports, seed: u64) -> ClientConfig {
    let spec = parse_spec("round:2").expect("round:2 parses");
    ClientConfig::new(p.server.to_vec(), spec, seed)
        .with_timeouts(Timeouts::default().with_rpc_ms(400).with_op_budget_ms(3000))
}

/// One closed-loop load worker: mixed lookups, adds, and deletes over
/// a shared key population. Errors are counted, never fatal — fault
/// phases are *supposed* to hurt.
async fn load_worker(
    p: Ports,
    seed: u64,
    worker: u64,
    stop: Arc<AtomicBool>,
    ops: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
) {
    let mut client = Client::connect(client_config(&p, seed ^ ((worker + 1) * 0x9E37)));
    let mut added: Option<(Vec<u8>, Vec<u8>)> = None;
    let mut i = 0u64;
    while !stop.load(Ordering::Relaxed) {
        if i % 128 == 0 {
            // Adopt whatever membership the cluster currently holds. A
            // stale view still works (dead members are probed and
            // skipped), but a fresh one stops burning probes on them
            // and starts routing to live joiners.
            let _ = client.refresh_membership().await;
        }
        let key = format!("soak/k{}", (i.wrapping_mul(7).wrapping_add(worker)) % KEYS);
        let result = match i % 8 {
            0 => {
                let entry = format!("w{worker}-{i}").into_bytes();
                let r = client.add(key.as_bytes(), entry.clone()).await.map(|_| ());
                if r.is_ok() {
                    added = Some((key.clone().into_bytes(), entry));
                }
                r.map_err(|e| e.to_string())
            }
            4 => match added.take() {
                // Delete something this worker added, so deletes
                // exercise tombstones without not-found noise.
                Some((k, entry)) => {
                    client.delete(&k, entry).await.map(|_| ()).map_err(|e| e.to_string())
                }
                None => Ok(()),
            },
            _ => client
                .partial_lookup(key.as_bytes(), 1)
                .await
                .map(|_| ())
                .map_err(|e| e.to_string()),
        };
        ops.fetch_add(1, Ordering::Relaxed);
        if result.is_err() {
            errors.fetch_add(1, Ordering::Relaxed);
        }
        i += 1;
        // Closed-loop with a small breather: sustained load without
        // saturating two servers on one CI core.
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
}

fn phase_json(p: &PhaseStat) -> String {
    let burns = p.max_burn_fast.iter().fold(Object::new(), |o, (slo, v)| o.f64(slo, *v));
    Object::new()
        .string("name", p.name)
        .u64("planned_s", p.planned_s)
        .u64("ops", p.ops)
        .u64("client_errors", p.client_errors)
        .u64("samples", p.samples)
        .field("max_burn_fast", &burns.build())
        .build()
}

async fn run_soak(o: &Opts) -> Result<(Vec<PhaseStat>, Vec<Audit>, Vec<String>), String> {
    let p = ports(o.base_port);
    let _ = std::fs::remove_dir_all(&o.data_dir);
    let mut procs = Procs::new();
    procs.proxy = Some(spawn_proxy(o, &p, "forward").await?);
    procs.server0 = Some(spawn_server(o, &p, 0)?);
    procs.server1 = Some(spawn_server(o, &p, 1)?);

    let mut audit = Client::connect(client_config(&p, o.seed));
    let members = vec![0u64, 1];
    await_cluster_up(&audit, &members, 15).await?;

    // Seed the key population so lookups have something to find.
    let mut seeder = Client::connect(client_config(&p, o.seed ^ 0x5EED));
    for k in 0..KEYS {
        let key = format!("soak/k{k}");
        let entries: Vec<Vec<u8>> = (0..4).map(|e| format!("seed-{e}").into_bytes()).collect();
        seeder.place(key.as_bytes(), entries).await.map_err(|e| format!("seeding {key}: {e}"))?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..o.concurrency as u64)
        .map(|w| {
            tokio::spawn(load_worker(
                ports(o.base_port),
                o.seed,
                w,
                Arc::clone(&stop),
                Arc::clone(&ops),
                Arc::clone(&errors),
            ))
        })
        .collect();

    let mut sampler = Sampler::new();
    let mut phases = Vec::new();

    phases.push(
        run_phase("baseline", o.phase_s, &mut sampler, &audit, &members, &ops, &errors).await,
    );

    // Fault 1: black-hole server 0's route to server 1. Replication
    // fan-out and anti-entropy sends fail; budgets must burn.
    kill_slot(&mut procs.proxy);
    procs.proxy = Some(spawn_proxy(o, &p, "black-hole").await?);
    let blackhole =
        run_phase("blackhole", o.phase_s, &mut sampler, &audit, &members, &ops, &errors).await;
    let burned: Vec<String> = blackhole
        .max_burn_fast
        .iter()
        .filter(|(_, v)| **v > 0.0)
        .map(|(slo, v)| format!("{slo}={v:.2}"))
        .collect();
    phases.push(blackhole);

    // Fault 2: restore the route, then SIGKILL the durable server and
    // restart it from its WAL. Its counters legitimately reset, so the
    // monotonicity tracker re-anchors.
    kill_slot(&mut procs.proxy);
    procs.proxy = Some(spawn_proxy(o, &p, "forward").await?);
    kill_slot(&mut procs.server1);
    sampler.reanchor(1);
    tokio::time::sleep(Duration::from_millis(500)).await;
    procs.server1 = Some(spawn_server(o, &p, 1)?);
    phases
        .push(run_phase("restart", o.phase_s, &mut sampler, &audit, &members, &ops, &errors).await);

    phases.push(
        run_phase("recovery", o.phase_s, &mut sampler, &audit, &members, &ops, &errors).await,
    );

    // Churn 1: a third server joins the live cluster. The seed hands it
    // the current view; placement groups re-home onto it via migration.
    procs.server2 = Some(spawn_joiner(o, &p)?);
    let members = await_epoch(&mut audit, 2, 30).await?;
    println!("join admitted: epoch 2, members {members:?}");
    phases.push(run_phase("join", o.phase_s, &mut sampler, &audit, &members, &ops, &errors).await);

    // Churn 2: retire server 1 gracefully. Its process stays up for the
    // whole phase — migration treats the *previous* group as donors, so
    // survivors can still pull the partitions it owned — and only then
    // is it killed for good.
    audit.drain(1).await.map_err(|e| format!("drain server 1: {e}"))?;
    let members = await_epoch(&mut audit, 3, 30).await?;
    if members.contains(&1) {
        return Err(format!("drain left member 1 in the view: {members:?}"));
    }
    println!("drain accepted: epoch 3, members {members:?}");
    phases
        .push(run_phase("drain1", o.phase_s, &mut sampler, &audit, &members, &ops, &errors).await);
    kill_slot(&mut procs.server1);
    sampler.reanchor(1);

    // Churn 3: SIGKILL server 0 mid-churn. It restarts from its WAL
    // with its stale bootstrap peer list and must re-learn the
    // post-churn membership from gossip (installs are strictly-newer,
    // so its stale view cannot regress the cluster).
    kill_slot(&mut procs.server0);
    sampler.reanchor(0);
    tokio::time::sleep(Duration::from_millis(500)).await;
    procs.server0 = Some(spawn_server(o, &p, 0)?);
    phases
        .push(run_phase("crash0", o.phase_s, &mut sampler, &audit, &members, &ops, &errors).await);

    phases
        .push(run_phase("settle", o.phase_s, &mut sampler, &audit, &members, &ops, &errors).await);

    // Drain: stop the load, then audit convergence.
    println!("phase drain: load stopped, auditing convergence");
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.await;
    }

    let mut audits = Vec::new();
    audits.push(Audit::new(
        "counters_monotone",
        sampler.regressions.is_empty(),
        if sampler.regressions.is_empty() {
            format!("no regressions across {} samples", sampler.samples)
        } else {
            sampler.regressions.join("; ")
        },
    ));
    audits.push(Audit::new(
        "burn_during_fault",
        !burned.is_empty(),
        if burned.is_empty() {
            "no SLO burned during the black-hole phase".to_string()
        } else {
            format!("fast burn observed during black-hole: {}", burned.join(", "))
        },
    ));
    audits.push(audit_inflight_drains(&audit, &members, o.phase_s).await);
    audits.push(audit_staleness_converges(&audit, &members, o.phase_s * 2).await);
    audits.push(audit_timeline_agrees(&audit, &p, &members).await);
    audits.push(audit_burn_stopped(&audit, &members).await);
    audits.push(audit_epoch_converged(&audit, &members, 3, o.phase_s).await);
    audits.push(audit_migration_completes(&audit, &members, o.phase_s).await);
    audits.push(audit_no_seed_lost(&p, o.seed).await);

    Ok((phases, audits, sampler.regressions.clone()))
}

fn write_artifact(o: &Opts, phases: &[PhaseStat], audits: &[Audit]) -> Result<PathBuf, String> {
    let doc = Object::new()
        .string("schema", "pls-soak/v1")
        .string("bench", &o.name)
        .string("git_rev", &git_rev())
        .field(
            "config",
            &Object::new()
                .u64("servers", 3)
                .u64("shards", 2)
                .u64("phase_s", o.phase_s)
                .u64("concurrency", o.concurrency as u64)
                .u64("keys", KEYS)
                .u64("seed", o.seed)
                .u64("scrape_ms", SCRAPE_MS)
                .u64("slo_fast_s", SLO_FAST_S)
                .u64("slo_slow_s", SLO_SLOW_S)
                .build(),
        )
        .field("phases", &array(phases.iter().map(phase_json)))
        .field(
            "audits",
            &array(audits.iter().map(|a| {
                Object::new()
                    .string("name", a.name)
                    .bool("pass", a.pass)
                    .string("detail", &a.detail)
                    .build()
            })),
        )
        .bool("pass", audits.iter().all(|a| a.pass))
        .build();
    std::fs::create_dir_all(&o.out_dir).map_err(|e| format!("{}: {e}", o.out_dir.display()))?;
    let path = o.out_dir.join(format!("SOAK_{}.json", o.name));
    std::fs::write(&path, doc).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let runtime = match tokio::runtime::Builder::new_multi_thread().enable_all().build() {
        Ok(rt) => rt,
        Err(err) => {
            eprintln!("runtime start failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = runtime.block_on(run_soak(&o));
    match outcome {
        Ok((phases, audits, _regressions)) => {
            match write_artifact(&o, &phases, &audits) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
            let failed = audits.iter().filter(|a| !a.pass).count();
            if failed > 0 {
                eprintln!("{failed} audit(s) failed");
                ExitCode::FAILURE
            } else {
                println!("all {} audits passed", audits.len());
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
