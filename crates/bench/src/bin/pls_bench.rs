//! `pls-bench` — utilities over `BENCH_*.json` artifacts.
//!
//! ```text
//! pls-bench compare BASELINE.json CURRENT.json
//!           [--max-regress-pct P] [--warn-only]
//!
//!   compare            print the per-metric delta between two bench
//!                      artifacts (latency p50/p99, throughput,
//!                      probes per lookup, engines-lock wait p99,
//!                      allocations per lookup) and fail when a
//!                      regression exceeds the threshold
//!   --max-regress-pct  allowed regression per metric, percent
//!                      (default 25)
//!   --warn-only        report regressions but always exit 0 — for CI
//!                      smoke runs on shared hardware where absolute
//!                      numbers are noisy
//! ```
//!
//! `pls-bench/v1`, `v2`, and `v3` artifacts are all accepted (each
//! version only adds fields — `v2` the consistency block, `v3` the
//! server-side `runtime` block), so a baseline committed before a
//! schema bump stays comparable. Metrics present in only one artifact
//! (e.g. `runtime.*` against a pre-v3 baseline) are listed as `n/a`
//! and never counted as regressions.

use std::process::ExitCode;

use pls_bench::compare::{compare_docs, describe, load_artifact};

fn compare(
    baseline_path: &str,
    current_path: &str,
    max_regress_pct: f64,
    warn_only: bool,
) -> Result<ExitCode, String> {
    let baseline = load_artifact(baseline_path)?;
    let current = load_artifact(current_path)?;
    println!("baseline: {} ({baseline_path})", describe(&baseline));
    println!("current:  {} ({current_path})", describe(&current));
    let outcome = compare_docs(&baseline, &current, max_regress_pct)?;
    print!("{}", outcome.report);
    if outcome.regressions > 0 {
        if warn_only {
            println!("(warn-only: exiting 0)");
            return Ok(ExitCode::SUCCESS);
        }
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut max_regress_pct = 25.0f64;
    let mut warn_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress-pct" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => max_regress_pct = v,
                    None => {
                        eprintln!("--max-regress-pct needs a numeric value");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--warn-only" => warn_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: pls-bench compare BASELINE.json CURRENT.json \
                     [--max-regress-pct P] [--warn-only]"
                );
                return ExitCode::SUCCESS;
            }
            other => positional.push(other),
        }
        i += 1;
    }
    match positional.as_slice() {
        ["compare", baseline, current] => {
            match compare(baseline, current, max_regress_pct, warn_only) {
                Ok(code) => code,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: pls-bench compare BASELINE.json CURRENT.json \
                 [--max-regress-pct P] [--warn-only]"
            );
            ExitCode::FAILURE
        }
    }
}
