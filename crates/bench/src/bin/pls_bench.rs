//! `pls-bench` — utilities over `BENCH_*.json` artifacts.
//!
//! ```text
//! pls-bench compare BASELINE.json CURRENT.json
//!           [--max-regress-pct P] [--warn-only]
//!
//!   compare            print the per-metric delta between two bench
//!                      artifacts (latency p50/p99, throughput,
//!                      probes per lookup, engines-lock wait p99,
//!                      allocations per lookup) and fail when a
//!                      regression exceeds the threshold
//!   --max-regress-pct  allowed regression per metric, percent
//!                      (default 25)
//!   --warn-only        report regressions but always exit 0 — for CI
//!                      smoke runs on shared hardware where absolute
//!                      numbers are noisy
//! ```
//!
//! `pls-bench/v1`, `v2`, and `v3` artifacts are all accepted (each
//! version only adds fields — `v2` the consistency block, `v3` the
//! server-side `runtime` block), so a baseline committed before a
//! schema bump stays comparable. Metrics present in only one artifact
//! (e.g. `runtime.*` against a pre-v3 baseline) are listed as `n/a`
//! and never counted as regressions.

use std::process::ExitCode;

use pls_bench::output::BENCH_SCHEMAS_ACCEPTED;
use pls_telemetry::json::{parse, Value};

/// One compared metric: where it lives in `results`, whether bigger is
/// better, and how it prints.
struct Metric {
    label: &'static str,
    /// Path under `results`, e.g. `["latency_us", "p50"]`.
    path: &'static [&'static str],
    /// `true` when a larger value is an improvement (throughput);
    /// `false` when it is a regression (latency, probe counts).
    higher_is_better: bool,
}

const METRICS: [Metric; 7] = [
    Metric { label: "latency p50 (us)", path: &["latency_us", "p50"], higher_is_better: false },
    Metric { label: "latency p99 (us)", path: &["latency_us", "p99"], higher_is_better: false },
    Metric { label: "throughput (rps)", path: &["throughput_rps"], higher_is_better: true },
    Metric {
        label: "probes/lookup (client)",
        path: &["probes", "per_lookup_mean"],
        higher_is_better: false,
    },
    Metric {
        label: "probes/lookup (servers)",
        path: &["probes", "per_lookup_from_servers"],
        higher_is_better: false,
    },
    Metric {
        label: "engines lock wait p99 (us)",
        path: &["runtime", "locks", "engines", "wait_us", "p99"],
        higher_is_better: false,
    },
    Metric {
        label: "allocs/lookup (servers)",
        path: &["runtime", "alloc", "allocs_per_lookup"],
        higher_is_better: false,
    },
];

/// Loads an artifact, checks its schema tag, and returns the document.
fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or(format!("{path}: missing `schema` field"))?;
    if !BENCH_SCHEMAS_ACCEPTED.contains(&schema) {
        return Err(format!(
            "{path}: unsupported schema `{schema}` (accepted: {})",
            BENCH_SCHEMAS_ACCEPTED.join(", ")
        ));
    }
    Ok(doc)
}

/// Walks `results.<path...>` to a number.
fn lookup(doc: &Value, path: &[&str]) -> Option<f64> {
    let mut v = doc.get("results")?;
    for key in path {
        v = v.get(key)?;
    }
    v.as_f64()
}

fn describe(doc: &Value) -> String {
    let bench = doc.get("bench").and_then(Value::as_str).unwrap_or("?");
    let rev = doc.get("git_rev").and_then(Value::as_str).unwrap_or("?");
    format!("{bench} @ {}", &rev[..rev.len().min(12)])
}

fn compare(
    baseline_path: &str,
    current_path: &str,
    max_regress_pct: f64,
    warn_only: bool,
) -> Result<ExitCode, String> {
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    println!("baseline: {} ({baseline_path})", describe(&baseline));
    println!("current:  {} ({current_path})", describe(&current));
    println!(
        "{:<26} {:>12} {:>12} {:>9}  verdict (threshold {max_regress_pct}%)",
        "metric", "baseline", "current", "delta"
    );

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for m in &METRICS {
        let b = lookup(&baseline, m.path);
        let c = lookup(&current, m.path);
        let (Some(b), Some(c)) = (b, c) else {
            println!("{:<26} {:>12} {:>12} {:>9}  n/a", m.label, "-", "-", "-");
            continue;
        };
        compared += 1;
        // Regression percentage in the "worse" direction; guarded for
        // zero baselines (a 0 -> 0.1 move is noise, not infinity).
        let delta_pct = if b.abs() < f64::EPSILON {
            0.0
        } else if m.higher_is_better {
            (b - c) / b * 100.0
        } else {
            (c - b) / b * 100.0
        };
        let regressed = delta_pct > max_regress_pct;
        if regressed {
            regressions += 1;
        }
        let shown_pct = (c - b) / if b.abs() < f64::EPSILON { 1.0 } else { b } * 100.0;
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>+8.1}%  {}",
            m.label,
            b,
            c,
            shown_pct,
            if regressed { "REGRESSED" } else { "ok" },
        );
    }
    if compared == 0 {
        return Err("no comparable metrics found in both artifacts".to_string());
    }
    if regressions > 0 {
        println!(
            "{regressions} metric{} regressed beyond {max_regress_pct}%{}",
            if regressions == 1 { "" } else { "s" },
            if warn_only { " (warn-only: exiting 0)" } else { "" },
        );
        return Ok(if warn_only { ExitCode::SUCCESS } else { ExitCode::FAILURE });
    }
    println!("no regressions beyond {max_regress_pct}%");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut max_regress_pct = 25.0f64;
    let mut warn_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress-pct" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => max_regress_pct = v,
                    None => {
                        eprintln!("--max-regress-pct needs a numeric value");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--warn-only" => warn_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: pls-bench compare BASELINE.json CURRENT.json \
                     [--max-regress-pct P] [--warn-only]"
                );
                return ExitCode::SUCCESS;
            }
            other => positional.push(other),
        }
        i += 1;
    }
    match positional.as_slice() {
        ["compare", baseline, current] => {
            match compare(baseline, current, max_regress_pct, warn_only) {
                Ok(code) => code,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: pls-bench compare BASELINE.json CURRENT.json \
                 [--max-regress-pct P] [--warn-only]"
            );
            ExitCode::FAILURE
        }
    }
}
