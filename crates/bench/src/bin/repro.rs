//! Regenerates every table and figure of *Partial Lookup Services*.
//!
//! ```text
//! repro [--paper] [--out DIR] [--json] [ID ...]
//!
//!   ID       table1 fig4 fig6 fig7 fig9 fig12 fig13 fig14 table2, or `all`
//!   --paper  run at the paper's full Monte-Carlo scale (slow)
//!   --out    directory for CSV output (default: results/)
//!   --json   also write every table into one `BENCH_repro.json`
//!            artifact in DIR (pls-bench/v1 schema, same shape the
//!            cluster loadgen emits)
//! ```
//!
//! Each experiment prints an aligned console table (the series the paper
//! plots) and writes the same data as CSV.

use std::path::PathBuf;
use std::process::ExitCode;

use pls_bench::output::{fnum, BenchReport, Table};
use pls_sim::experiments::{
    ablations, availability, fig12, fig13, fig14, fig4, fig6, fig7, fig9, hotspot, ratio,
    reachability, table1, table2,
};
use pls_telemetry::json;

struct Options {
    paper: bool,
    out: PathBuf,
    json: bool,
    ids: Vec<String>,
}

const ALL_IDS: [&str; 15] = [
    "table1",
    "fig4",
    "fig6",
    "fig7",
    "fig9",
    "fig12",
    "fig13",
    "fig14",
    "table2",
    "hotspot",
    "ratio",
    "reachability",
    "availability",
    "ablation-stride",
    "ablation-hashy",
];

fn parse_args() -> Result<Options, String> {
    let mut paper = false;
    let mut out = PathBuf::from("results");
    let mut json = false;
    let mut ids = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--paper" => paper = true,
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a directory")?);
            }
            "--json" => json = true,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: repro [--paper] [--out DIR] [--json] [ID ...]\n  IDs: {} all",
                    ALL_IDS.join(" ")
                ));
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => ids.push(id.to_string()),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }
    ids.dedup();
    Ok(Options { paper, out, json, ids })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "partial-lookup reproduction harness — scale: {}\n",
        if opts.paper { "paper (full Monte-Carlo)" } else { "quick" }
    );
    let mut tables = Vec::new();
    for id in &opts.ids {
        let table = run_one(id, opts.paper);
        println!("{}", table.render());
        match table.write_csv(&opts.out, id) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  (csv write failed: {err})\n"),
        }
        tables.push((id.clone(), table));
    }
    if opts.json {
        let config = json::Object::new()
            .string("scale", if opts.paper { "paper" } else { "quick" })
            .field("ids", &json::array(tables.iter().map(|(id, _)| json::string(id))))
            .build();
        let results = json::array(tables.iter().map(|(id, t)| {
            json::Object::new().string("id", id).field("table", &t.to_json()).build()
        }));
        let report = BenchReport::new("repro", config, results);
        match report.write(&opts.out) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => {
                eprintln!("json artifact write failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_one(id: &str, paper: bool) -> Table {
    match id {
        "table1" => render_table1(paper),
        "fig4" => render_fig4(paper),
        "fig6" => render_fig6(paper),
        "fig7" => render_fig7(paper),
        "fig9" => render_fig9(paper),
        "fig12" => render_fig12(paper),
        "fig13" => render_fig13(paper),
        "fig14" => render_fig14(paper),
        "table2" => render_table2(),
        "hotspot" => render_hotspot(paper),
        "ratio" => render_ratio(paper),
        "reachability" => render_reachability(),
        "availability" => render_availability(paper),
        "ablation-stride" => render_ablation_stride(),
        "ablation-hashy" => render_ablation_hashy(),
        other => unreachable!("validated id {other}"),
    }
}

fn render_table1(paper: bool) -> Table {
    let params = if paper { table1::Params::paper() } else { table1::Params::quick() };
    let rows = table1::run(&params);
    let mut t = Table::new(
        format!(
            "Table 1: storage cost, h={} entries on n={} servers (x={}, y={})",
            params.h, params.n, params.x, params.y
        ),
        &["strategy", "analytic", "measured", "ci95"],
    );
    for row in rows {
        t.row(vec![
            row.spec.to_string(),
            fnum(row.analytic),
            fnum(row.measured.mean()),
            fnum(row.measured.ci95_half_width()),
        ]);
    }
    t
}

fn render_fig4(paper: bool) -> Table {
    let params = if paper { fig4::Params::paper() } else { fig4::Params::quick() };
    let rows = fig4::run(&params);
    let mut t = Table::new(
        format!(
            "Figure 4: lookup cost vs target answer size (h={}, n={}, storage={})",
            params.h, params.n, params.budget
        ),
        &["t", "Round-2", "RandomServer-20", "Hash-2"],
    );
    for row in rows {
        t.row(vec![
            row.t.to_string(),
            fnum(row.round_robin.mean()),
            fnum(row.random_server.mean()),
            fnum(row.hash.mean()),
        ]);
    }
    t
}

fn render_fig6(paper: bool) -> Table {
    let params = if paper { fig6::Params::paper() } else { fig6::Params::quick() };
    let rows = fig6::run(&params);
    let mut t = Table::new(
        format!("Figure 6: coverage vs total storage (h={}, n={})", params.h, params.n),
        &["storage", "Round&Hash", "Fixed", "RandomServer", "RandomServer(analytic)"],
    );
    let opt = |v: Option<f64>| v.map(fnum).unwrap_or_else(|| "-".into());
    for row in rows {
        t.row(vec![
            row.budget.to_string(),
            opt(row.round_hash),
            opt(row.fixed),
            opt(row.random_server.map(|s| s.mean())),
            opt(row.random_server_analytic),
        ]);
    }
    t
}

fn render_fig7(paper: bool) -> Table {
    let params = if paper { fig7::Params::paper() } else { fig7::Params::quick() };
    let rows = fig7::run(&params);
    let mut t = Table::new(
        format!(
            "Figure 7: fault tolerance vs target answer size (h={}, n={}, storage={})",
            params.h, params.n, params.budget
        ),
        &["t", "RandomServer-20", "Hash-2", "Round-2"],
    );
    for row in rows {
        t.row(vec![
            row.t.to_string(),
            fnum(row.random_server.mean()),
            fnum(row.hash.mean()),
            fnum(row.round_robin.mean()),
        ]);
    }
    t
}

fn render_fig9(paper: bool) -> Table {
    let params = if paper { fig9::Params::paper() } else { fig9::Params::quick() };
    let rows = fig9::run(&params);
    let mut t = Table::new(
        format!(
            "Figure 9: unfairness vs total storage (h={}, n={}, t={}) — see EXPERIMENTS.md on magnitude",
            params.h, params.n, params.t
        ),
        &["storage", "randomServer", "hash"],
    );
    for row in rows {
        t.row(vec![row.budget.to_string(), fnum(row.random_server.mean()), fnum(row.hash.mean())]);
    }
    t
}

fn render_fig12(paper: bool) -> Table {
    let params = if paper { fig12::Params::paper() } else { fig12::Params::quick() };
    let rows = fig12::run(&params);
    let mut t = Table::new(
        format!(
            "Figure 12: Fixed-x lookup failure rate vs cushion (t={}, h={}, % of time)",
            params.t, params.h
        ),
        &["cushion", "exp_%", "zipf_%"],
    );
    for row in rows {
        t.row(vec![
            row.cushion.to_string(),
            fnum(row.exponential.mean() * 100.0),
            fnum(row.zipf.mean() * 100.0),
        ]);
    }
    t
}

fn render_fig13(paper: bool) -> Table {
    let params = if paper { fig13::Params::paper() } else { fig13::Params::quick() };
    let rows = fig13::run(&params);
    let mut t = Table::new(
        format!(
            "Figure 13: RandomServer-{} unfairness vs number of updates (h={}, n={})",
            params.x, params.h, params.n
        ),
        &["updates", "unfairness"],
    );
    for row in rows {
        t.row(vec![row.updates.to_string(), fnum(row.unfairness.mean())]);
    }
    t
}

fn render_fig14(paper: bool) -> Table {
    let params = if paper { fig14::Params::paper() } else { fig14::Params::quick() };
    let rows = fig14::run(&params);
    let mut t = Table::new(
        format!(
            "Figure 14: update overhead, Fixed-{} vs adaptive Hash-y (t={}, n={}, {} updates)",
            params.fixed_x, params.t, params.n, params.updates
        ),
        &["h", "fixed-x_msgs", "hash-y_msgs", "hash_y"],
    );
    for row in rows {
        t.row(vec![
            row.h.to_string(),
            fnum(row.fixed_messages.mean()),
            fnum(row.hash_messages.mean()),
            row.hash_y.to_string(),
        ]);
    }
    t
}

fn render_hotspot(paper: bool) -> Table {
    let params = if paper { hotspot::Params::paper() } else { hotspot::Params::quick() };
    let rows = hotspot::run(&params);
    let mut t = Table::new(
        format!(
            "Hot-spot comparison (extension): {} keys, Zipf({}) popularity, {} lookups, {} failures",
            params.keys, params.zipf_s, params.lookups, params.failures
        ),
        &["system", "max/mean load", "load CV", "unavailability_%"],
    );
    for row in rows {
        t.row(vec![
            row.system,
            fnum(row.max_over_mean),
            fnum(row.load_cv),
            fnum(row.unavailability * 100.0),
        ]);
    }
    t
}

fn render_ratio(paper: bool) -> Table {
    let params = if paper { ratio::Params::paper() } else { ratio::Params::quick() };
    let rows = ratio::run(&params);
    let mut t = Table::new(
        format!(
            "Lookup:update ratio (extension, §6.4 remark): total messages over {} ops (h={}, t={})",
            params.operations, params.h, params.t
        ),
        &["lookup_fraction", "fixed-x_total", "hash-y_total"],
    );
    for row in rows {
        t.row(vec![
            format!("{:.2}", row.lookup_fraction),
            fnum(row.fixed_total.mean()),
            fnum(row.hash_total.mean()),
        ]);
    }
    t
}

fn render_reachability() -> Table {
    let params = reachability::Params::quick();
    let rows = reachability::run(&params);
    let mut t = Table::new(
        format!("Reachability trade-off (extension, §7.2): {}-node random overlay", params.nodes),
        &["hop_bound_d", "hosts (update fan-out)", "mean lookup hops"],
    );
    for row in rows {
        t.row(vec![row.d.to_string(), fnum(row.hosts), fnum(row.mean_lookup_hops)]);
    }
    t
}

fn render_availability(paper: bool) -> Table {
    let params = if paper { availability::Params::paper() } else { availability::Params::quick() };
    let rows = availability::run(&params);
    let mut t = Table::new(
        format!(
            "Availability under random failures (extension): lookup failure % (h={}, storage={}, t={})",
            params.h, params.budget, params.t
        ),
        &["failed", "FullRepl_%", "Fixed_%", "RandomServer_%", "Round_%", "Hash_%"],
    );
    for row in rows {
        t.row(vec![
            row.failures.to_string(),
            fnum(row.full_replication.mean() * 100.0),
            fnum(row.fixed.mean() * 100.0),
            fnum(row.random_server.mean() * 100.0),
            fnum(row.round_robin.mean() * 100.0),
            fnum(row.hash.mean() * 100.0),
        ]);
    }
    t
}

fn render_ablation_stride() -> Table {
    let params = ablations::StrideParams::quick();
    let rows = ablations::stride_vs_random(&params);
    let mut t = Table::new(
        format!(
            "Ablation: Round-{} lookup procedure — stride walk vs shuffled probing (same placement)",
            params.y
        ),
        &["t", "stride_cost", "random_probe_cost"],
    );
    for row in rows {
        t.row(vec![row.t.to_string(), fnum(row.stride), fnum(row.random)]);
    }
    t
}

fn render_ablation_hashy() -> Table {
    let params = ablations::HashYParams::quick();
    let rows = ablations::adaptive_vs_fixed_hash(&params);
    let mut t = Table::new(
        format!(
            "Ablation: Hash-y with adaptive y=ceil(t*n/h) vs fixed y={} (t={}, {} updates)",
            params.fixed_y, params.t, params.updates
        ),
        &["h", "adaptive_y", "adaptive_msgs", "fixed_msgs", "adaptive_lookup", "fixed_lookup"],
    );
    for row in rows {
        t.row(vec![
            row.h.to_string(),
            row.adaptive_y.to_string(),
            fnum(row.adaptive_msgs.mean()),
            fnum(row.fixed_msgs.mean()),
            fnum(row.adaptive_lookup.mean()),
            fnum(row.fixed_lookup.mean()),
        ]);
    }
    t
}

fn render_table2() -> Table {
    let rows = table2::run();
    let mut t = Table::new(
        "Table 2: qualitative summary (stars 1-4, more is better)",
        &[
            "strategy",
            "stor.few",
            "stor.many",
            "coverage",
            "fault tol",
            "fair.few",
            "fair.many",
            "lookup",
            "upd.small-t",
            "upd.large-t",
        ],
    );
    for row in rows {
        let mut cells = vec![row.strategy.to_string()];
        cells.extend(row.stars.iter().map(|s| "*".repeat(*s as usize)));
        t.row(cells);
    }
    t
}
