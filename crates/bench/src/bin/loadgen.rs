//! `loadgen` — load generator for a *live* partial lookup cluster.
//!
//! Where `repro` regenerates the paper's numbers in simulation,
//! `loadgen` measures the deployed system: it drives partial lookups
//! (optionally mixed with updates and deletes) at a configurable shape
//! against running `pls-server` processes and writes the measurements
//! as a `BENCH_<name>.json` artifact in the shared `pls-bench/v3`
//! schema (git revision, run configuration, throughput,
//! log₂-histogram latency quantiles, probe decomposition, robustness
//! totals, the server-side `runtime` block — lock contention per site,
//! allocation deltas, queue depths — and, for mixed workloads against
//! servers running the staleness probe, the measured consistency
//! block).
//!
//! ```text
//! loadgen --servers A,B,... --strategy SPEC [--t T] [--seed S]
//!         [--keys N] [--entries-per-key M] [--zipf S]
//!         [--duration-s D] [--concurrency C]
//!         [--mode closed|open] [--rate RPS]
//!         [--update-pct P] [--delete-pct P]
//!         [--out DIR] [--name NAME] [--skip-setup]
//!         [--rpc-timeout-ms MS] [--op-budget-ms MS] [--hedge-ms MS]
//!         [--log LEVEL]
//!
//!   --servers         every server's address, comma-separated
//!   --strategy        full | fixed:X | random:X | round:Y | hash:Y
//!   --t               partial lookup target answer size (default 3)
//!   --keys            distinct keys to place and query (default 64)
//!   --entries-per-key entries placed under each key (default 8)
//!   --zipf            Zipf(s) skew of the key popularity (default 0.9;
//!                     0 = uniform)
//!   --duration-s      measured run length in seconds (default 10)
//!   --concurrency     worker clients issuing lookups (default 4)
//!   --mode            closed: each worker issues back-to-back lookups;
//!                     open: workers fire on a fixed schedule at --rate
//!                     lookups/s total, and latency is measured from the
//!                     *scheduled* start so queueing delay is charged
//!                     (no coordinated omission)
//!   --rate            open-loop arrival rate, lookups/s (default 100)
//!   --update-pct      percent of operations that add a fresh entry to
//!                     the sampled key (default 0 = lookups only)
//!   --delete-pct      percent of operations that delete an entry this
//!                     worker added earlier (default 0); a delete with
//!                     nothing to delete degrades to an update, so the
//!                     originally placed entries stay available to
//!                     lookups
//!   --out             artifact directory (default results/)
//!   --name            artifact name: BENCH_<name>.json (default cluster)
//!   --skip-setup      do not place keys first (cluster already loaded)
//! ```
//!
//! With a mixed workload the artifact's `results.staleness` block
//! captures the cluster's own consistency observatory after the run:
//! the `pls_live_staleness{strategy,t}` gauges, tombstone totals, and
//! the `pls_staleness_versions_behind` quantiles.
//!
//! The `results.runtime` block captures the cluster's performance
//! observatory as the *growth over the measured run*: a Metrics
//! snapshot is taken from every server before and after the workload,
//! and the block holds the difference — per-site lock wait/hold
//! quantiles and acquisition/contention counts (`runtime.locks`,
//! keyed by site so `pls-bench compare` can address e.g.
//! `runtime.locks.engines.wait_us.p99`; on a sharded server each
//! site merges every shard's lock of that family, so the paths are
//! shard-count-independent), allocation deltas from the
//! servers' counting allocator with the derived `allocs_per_lookup`
//! (`runtime.alloc`), and the post-run queue-depth gauges
//! (`runtime.queues` — gauges merge by replacement, so each value is
//! the last-merged server's sample, not a cluster sum).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pls_bench::output::BenchReport;
use pls_cluster::{parse_spec, Client, ClientConfig, Timeouts};
use pls_telemetry::json::{array, number, string, Object};
use pls_telemetry::snapshot::{labeled, parse_labels};
use pls_telemetry::trace;
use pls_telemetry::{Counter, Histogram, HistogramSnapshot, MetricsSnapshot};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

struct Options {
    cfg: ClientConfig,
    t: usize,
    keys: usize,
    entries_per_key: usize,
    zipf_s: f64,
    duration: Duration,
    concurrency: usize,
    mode: Mode,
    rate: f64,
    update_pct: f64,
    delete_pct: f64,
    out: PathBuf,
    name: String,
    skip_setup: bool,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut servers: Option<Vec<SocketAddr>> = None;
    let mut spec = None;
    let mut seed = 1u64;
    let mut t = 3usize;
    let mut keys = 64usize;
    let mut entries_per_key = 8usize;
    let mut zipf_s = 0.9f64;
    let mut duration_s = 10u64;
    let mut concurrency = 4usize;
    let mut mode = Mode::Closed;
    let mut rate = 100.0f64;
    let mut update_pct = 0.0f64;
    let mut delete_pct = 0.0f64;
    let mut out = PathBuf::from("results");
    let mut name = "cluster".to_string();
    let mut skip_setup = false;
    let mut timeouts = Timeouts::default();
    let mut hedge_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--servers" => {
                let raw = value("--servers")?;
                let parsed: Result<Vec<SocketAddr>, _> =
                    raw.split(',').map(|s| s.trim().parse()).collect();
                servers = Some(parsed.map_err(|e| format!("--servers: {e}"))?);
            }
            "--strategy" => spec = Some(parse_spec(&value("--strategy")?)?),
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--t" => t = value("--t")?.parse().map_err(|e| format!("--t: {e}"))?,
            "--keys" => keys = value("--keys")?.parse().map_err(|e| format!("--keys: {e}"))?,
            "--entries-per-key" => {
                entries_per_key = value("--entries-per-key")?
                    .parse()
                    .map_err(|e| format!("--entries-per-key: {e}"))?;
            }
            "--zipf" => zipf_s = value("--zipf")?.parse().map_err(|e| format!("--zipf: {e}"))?,
            "--duration-s" => {
                duration_s =
                    value("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?;
            }
            "--concurrency" => {
                concurrency =
                    value("--concurrency")?.parse().map_err(|e| format!("--concurrency: {e}"))?;
            }
            "--mode" => {
                mode = match value("--mode")?.as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => return Err(format!("--mode: `{other}` is not closed|open")),
                };
            }
            "--rate" => rate = value("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--update-pct" => {
                update_pct =
                    value("--update-pct")?.parse().map_err(|e| format!("--update-pct: {e}"))?;
            }
            "--delete-pct" => {
                delete_pct =
                    value("--delete-pct")?.parse().map_err(|e| format!("--delete-pct: {e}"))?;
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--name" => name = value("--name")?,
            "--skip-setup" => skip_setup = true,
            "--rpc-timeout-ms" => {
                let ms = value("--rpc-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--rpc-timeout-ms: {e}"))?;
                timeouts = timeouts.with_rpc_ms(ms);
            }
            "--op-budget-ms" => {
                let ms =
                    value("--op-budget-ms")?.parse().map_err(|e| format!("--op-budget-ms: {e}"))?;
                timeouts = timeouts.with_op_budget_ms(ms);
            }
            "--hedge-ms" => {
                hedge_ms =
                    Some(value("--hedge-ms")?.parse().map_err(|e| format!("--hedge-ms: {e}"))?);
            }
            "--log" => trace::init_from_str(&value("--log")?)?,
            "--help" | "-h" => {
                return Err("usage: loadgen --servers A,B,... --strategy SPEC [--t T] \
                     [--keys N] [--entries-per-key M] [--zipf S] [--duration-s D] \
                     [--concurrency C] [--mode closed|open] [--rate RPS] \
                     [--update-pct P] [--delete-pct P] [--out DIR] \
                     [--name NAME] [--skip-setup] [--rpc-timeout-ms MS] [--op-budget-ms MS] \
                     [--hedge-ms MS] [--log LEVEL]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let servers = servers.ok_or("--servers is required")?;
    let spec = spec.ok_or("--strategy is required")?;
    if t == 0 || keys == 0 || entries_per_key == 0 || concurrency == 0 {
        return Err("--t, --keys, --entries-per-key, --concurrency must be positive".to_string());
    }
    if mode == Mode::Open && rate <= 0.0 {
        return Err("--rate must be positive in open mode".to_string());
    }
    if !(0.0..=100.0).contains(&update_pct)
        || !(0.0..=100.0).contains(&delete_pct)
        || update_pct + delete_pct > 100.0
    {
        return Err("--update-pct/--delete-pct must be in [0,100] and sum to <= 100".to_string());
    }
    let mut cfg = ClientConfig::new(servers, spec, seed).with_timeouts(timeouts);
    if let Some(ms) = hedge_ms {
        cfg = cfg.with_hedging(Duration::from_millis(ms));
    }
    Ok(Options {
        cfg,
        t,
        keys,
        entries_per_key,
        zipf_s,
        duration: Duration::from_secs(duration_s),
        concurrency,
        mode,
        rate,
        update_pct,
        delete_pct,
        out,
        name,
        skip_setup,
        seed,
    })
}

/// SplitMix64: a tiny, seedable generator — the workload must be
/// reproducible across runs without pulling a rand dependency into the
/// binary.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`, 53 bits of precision.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf(s) sampler over `0..n` by inversion of the precomputed CDF:
/// key `i` has weight `1/(i+1)^s`, so key 0 is the hottest. `s = 0`
/// degenerates to uniform.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn key_name(i: usize) -> Vec<u8> {
    format!("key-{i:05}").into_bytes()
}

/// Shared run-wide tallies the workers feed.
#[derive(Default)]
struct Tally {
    /// Completed lookups (reached a decision, even if under target).
    lookups: Counter,
    /// Lookups that returned an error.
    failures: Counter,
    /// Completed lookups that returned fewer than `t` entries.
    target_misses: Counter,
    /// Completed update operations (mixed workload).
    updates: Counter,
    /// Completed delete operations (mixed workload).
    deletes: Counter,
    /// Update/delete operations that returned an error.
    mutation_failures: Counter,
    /// Per-lookup latency; open mode measures from the scheduled start.
    latency_us: Histogram,
    /// Per-mutation (update/delete) latency, same clock rules.
    mutation_latency_us: Histogram,
}

async fn setup(opts: &Options) -> Result<(), String> {
    let mut client = Client::connect(opts.cfg.clone());
    for i in 0..opts.keys {
        let entries: Vec<Vec<u8>> = (0..opts.entries_per_key)
            .map(|j| format!("entry-{i:05}-{j:03}").into_bytes())
            .collect();
        client.place(&key_name(i), entries).await.map_err(|e| format!("placing key {i}: {e}"))?;
    }
    Ok(())
}

/// One operation of the mixed workload, drawn per tick from the
/// configured update/delete/lookup split.
enum Op {
    Lookup,
    Update,
    Delete,
}

#[allow(clippy::too_many_arguments)]
async fn worker(
    opts_cfg: ClientConfig,
    w: usize,
    t: usize,
    zipf: Arc<Zipf>,
    tally: Arc<Tally>,
    deadline: tokio::time::Instant,
    mut rng: Rng,
    open_interval: Option<Duration>,
    update_pct: f64,
    delete_pct: f64,
) -> MetricsSnapshot {
    let mut client = Client::connect(opts_cfg);
    let start = tokio::time::Instant::now();
    let mut tick = 0u32;
    // Entries this worker added and has not yet deleted — the only
    // entries deletes target, so the originally placed data set stays
    // intact for lookups.
    let mut pending: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut added = 0u64;
    loop {
        let scheduled = match open_interval {
            Some(interval) => {
                let at = start + interval * tick;
                tick += 1;
                tokio::time::sleep_until(at).await;
                at
            }
            None => tokio::time::Instant::now(),
        };
        if scheduled >= deadline || tokio::time::Instant::now() >= deadline {
            break;
        }
        let key = key_name(zipf.sample(&mut rng));
        let op = {
            let u = rng.f64() * 100.0;
            if u < update_pct {
                Op::Update
            } else if u < update_pct + delete_pct {
                Op::Delete
            } else {
                Op::Lookup
            }
        };
        match op {
            Op::Lookup => {
                let result = client.partial_lookup(&key, t).await;
                let elapsed = scheduled.elapsed();
                match result {
                    Ok(entries) => {
                        tally.lookups.inc();
                        tally.latency_us.observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
                        if entries.len() < t {
                            tally.target_misses.inc();
                        }
                    }
                    Err(_) => {
                        tally.failures.inc();
                    }
                }
            }
            Op::Delete if !pending.is_empty() => {
                // Delete the oldest surviving entry this worker added
                // (FIFO maximizes the entry's propagation time before
                // the delete chases it).
                let (key, entry) = pending.remove(0);
                let result = client.delete(&key, entry).await;
                let elapsed = scheduled.elapsed();
                match result {
                    Ok(()) => {
                        tally.deletes.inc();
                        tally
                            .mutation_latency_us
                            .observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
                    }
                    Err(_) => {
                        tally.mutation_failures.inc();
                    }
                }
            }
            // A delete with nothing this worker may delete degrades to
            // an update, keeping the mutation rate on schedule.
            Op::Update | Op::Delete => {
                added += 1;
                let entry = format!("upd-{w:02}-{added:08}").into_bytes();
                let result = client.add(&key, entry.clone()).await;
                let elapsed = scheduled.elapsed();
                match result {
                    Ok(()) => {
                        tally.updates.inc();
                        tally
                            .mutation_latency_us
                            .observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
                        pending.push((key, entry));
                    }
                    Err(_) => {
                        tally.mutation_failures.inc();
                    }
                }
            }
        }
    }
    client.metrics_snapshot()
}

fn quantiles_json(h: &HistogramSnapshot) -> String {
    Object::new()
        .u64("count", h.count)
        .f64("mean", h.mean())
        .f64("p50", h.quantile(0.50))
        .f64("p90", h.quantile(0.90))
        .f64("p99", h.quantile(0.99))
        .f64("p999", h.quantile(0.999))
        .build()
}

/// The artifact's `runtime` block: the cluster's performance
/// observatory as after-minus-before deltas across the measured run.
/// Lock sites the servers do not export (e.g. `wal` on a memory-only
/// cluster) are skipped rather than emitted as zeros, and old servers
/// that predate the families yield an empty `locks`/zeroed `alloc`
/// block rather than an error.
fn runtime_json(before: &MetricsSnapshot, after: &MetricsSnapshot, lookups: u64) -> String {
    let empty = HistogramSnapshot::empty();
    let mut locks = Object::new();
    // `engines` and `wal` merge every shard's lock under the sharded
    // server core. (The pre-sharding `key_specs` site no longer
    // exists: spec overrides live under the shard's `engines` lock.)
    for site in ["engines", "live_ft", "live_staleness", "wal"] {
        let labels = [("site", site)];
        let wait_name = labeled("pls_lock_wait_us", &labels);
        let Some(wait_after) = after.histogram(&wait_name) else { continue };
        let wait = wait_after.minus(before.histogram(&wait_name).unwrap_or(&empty));
        let hold_name = labeled("pls_lock_hold_us", &labels);
        let hold = after
            .histogram(&hold_name)
            .unwrap_or(&empty)
            .minus(before.histogram(&hold_name).unwrap_or(&empty));
        let delta = |family: &str| {
            let name = labeled(family, &labels);
            after.counter(&name).unwrap_or(0).saturating_sub(before.counter(&name).unwrap_or(0))
        };
        locks = locks.field(
            site,
            &Object::new()
                .u64("acquisitions", delta("pls_lock_acquisitions_total"))
                .u64("contended", delta("pls_lock_contended_total"))
                .field("wait_us", &quantiles_json(&wait))
                .field("hold_us", &quantiles_json(&hold))
                .build(),
        );
    }
    let counter_delta =
        |name: &str| after.counter_sum(name).saturating_sub(before.counter_sum(name));
    let allocs = counter_delta("pls_alloc_allocs_total");
    let alloc = Object::new()
        .u64("allocs", allocs)
        .u64("frees", counter_delta("pls_alloc_frees_total"))
        .u64("bytes", counter_delta("pls_alloc_bytes_total"))
        .u64("freed_bytes", counter_delta("pls_alloc_freed_bytes_total"))
        .f64("allocs_per_lookup", allocs as f64 / lookups.max(1) as f64)
        .build();
    // Post-run point-in-time samples; merged gauges keep the
    // last-merged server's value, so these are one server's reading.
    let mut depths: Vec<(String, f64)> = after
        .gauges
        .iter()
        .filter_map(|(name, value)| {
            let (family, labels) = parse_labels(name)?;
            if family != "pls_queue_depth" {
                return None;
            }
            let queue = labels.iter().find(|(k, _)| k == "queue")?.1.clone();
            Some((queue, *value))
        })
        .collect();
    depths.sort_by(|a, b| a.0.cmp(&b.0));
    let mut queues = Object::new();
    for (queue, value) in depths {
        queues = queues.f64(&queue, value);
    }
    Object::new()
        .field("locks", &locks.build())
        .field("alloc", &alloc)
        .field("queues", &queues.build())
        .build()
}

async fn run(opts: Options) -> Result<(), String> {
    if !opts.skip_setup {
        println!(
            "placing {} keys x {} entries under {} ...",
            opts.keys, opts.entries_per_key, opts.cfg.spec
        );
        setup(&opts).await?;
    }

    // Server-side probe counters before the run: the artifact
    // cross-checks the client's probes-per-lookup against the growth
    // of the servers' own `pls_probes_total`.
    let observer = Client::connect(opts.cfg.clone());
    let before = observer.cluster_metrics(false).await.map_err(|e| e.to_string())?;
    let probes_before = before.counter_sum("pls_probes_total");

    let zipf = Arc::new(Zipf::new(opts.keys, opts.zipf_s));
    let tally = Arc::new(Tally::default());
    let deadline = tokio::time::Instant::now() + opts.duration;
    let open_interval = match opts.mode {
        Mode::Open => Some(Duration::from_secs_f64(opts.concurrency as f64 / opts.rate)),
        Mode::Closed => None,
    };
    println!(
        "driving {} worker{} for {:?} ({} loop) ...",
        opts.concurrency,
        if opts.concurrency == 1 { "" } else { "s" },
        opts.duration,
        if opts.mode == Mode::Open { "open" } else { "closed" },
    );
    let started = std::time::Instant::now();
    let mut handles = Vec::new();
    for w in 0..opts.concurrency {
        handles.push(tokio::spawn(worker(
            opts.cfg.clone(),
            w,
            opts.t,
            Arc::clone(&zipf),
            Arc::clone(&tally),
            deadline,
            Rng(opts.seed ^ (w as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
            open_interval,
            opts.update_pct,
            opts.delete_pct,
        )));
    }
    let mut client_metrics = MetricsSnapshot::new();
    for handle in handles {
        let snap = handle.await.map_err(|e| format!("worker panicked: {e}"))?;
        client_metrics.merge(&snap);
    }
    let elapsed = started.elapsed();

    let after = observer.cluster_metrics(false).await.map_err(|e| e.to_string())?;
    let probes_after = after.counter_sum("pls_probes_total");
    let server_probe_delta = probes_after.saturating_sub(probes_before);

    let lookups = tally.lookups.get();
    let failures = tally.failures.get();
    let updates = tally.updates.get();
    let deletes = tally.deletes.get();
    let throughput = lookups as f64 / elapsed.as_secs_f64();
    let latency = tally.latency_us.snapshot();
    if lookups == 0 {
        return Err("no lookup completed — is the cluster reachable?".to_string());
    }

    let rate_json = if opts.mode == Mode::Open { number(opts.rate) } else { "null".to_string() };
    let config = Object::new()
        .u64("servers", opts.cfg.servers.len() as u64)
        .field("addresses", &array(opts.cfg.servers.iter().map(|a| string(&a.to_string()))))
        .string("strategy", &opts.cfg.spec.to_string())
        .u64("t", opts.t as u64)
        .u64("keys", opts.keys as u64)
        .u64("entries_per_key", opts.entries_per_key as u64)
        .f64("zipf_s", opts.zipf_s)
        .u64("duration_s", opts.duration.as_secs())
        .u64("concurrency", opts.concurrency as u64)
        .string("mode", if opts.mode == Mode::Open { "open" } else { "closed" })
        .field("rate_rps", &rate_json)
        .f64("update_pct", opts.update_pct)
        .f64("delete_pct", opts.delete_pct)
        .u64("seed", opts.seed)
        .build();

    let empty = HistogramSnapshot::empty();
    let probes_hist = client_metrics.histogram("pls_client_probes_per_lookup").unwrap_or(&empty);
    let probes = Object::new()
        .u64("client_total", client_metrics.counter_sum("pls_client_probes_total"))
        .f64("per_lookup_mean", probes_hist.mean())
        .f64("per_lookup_p99", probes_hist.quantile(0.99))
        .u64("server_delta_total", server_probe_delta)
        .f64("per_lookup_from_servers", server_probe_delta as f64 / lookups as f64)
        .build();

    let robustness = Object::new()
        .u64("rpc_timeouts", client_metrics.counter_sum("pls_rpc_timeouts_total"))
        .u64("rpc_retries", client_metrics.counter_sum("pls_rpc_retries_total"))
        .u64("hedges", client_metrics.counter_sum("pls_client_hedges_total"))
        .u64("hedge_wins", client_metrics.counter_sum("pls_client_hedge_wins_total"))
        .u64(
            "op_budget_exhausted",
            client_metrics.counter_sum("pls_client_op_budget_exhausted_total"),
        )
        .u64("probe_failures", client_metrics.counter_sum("pls_client_probe_failures_total"))
        .build();

    // The cluster's own consistency observatory, read back after the
    // run: per-strategy live staleness gauges, tombstone totals, and
    // the observed version-lag distribution. All zeros/empty when the
    // servers run without --staleness-ms or the workload is read-only.
    let mut live_staleness: Vec<String> = after
        .gauges
        .iter()
        .filter_map(|(name, value)| {
            let (family, labels) = parse_labels(name)?;
            if family != "pls_live_staleness" {
                return None;
            }
            let strategy = labels.iter().find(|(k, _)| k == "strategy")?.1.clone();
            let t: u64 = labels.iter().find(|(k, _)| k == "t")?.1.parse().ok()?;
            Some(
                Object::new()
                    .string("strategy", &strategy)
                    .u64("t", t)
                    .f64("p_fresh", *value)
                    .build(),
            )
        })
        .collect();
    live_staleness.sort();
    let staleness = Object::new()
        .field("live", &array(live_staleness))
        .u64("probe_rounds", after.counter_sum("pls_staleness_rounds_total"))
        .f64("tombstones_live", after.gauge("pls_tombstones_live_total").unwrap_or(0.0))
        .u64("tombstones_gc", after.counter_sum("pls_tombstones_gc_total"))
        .field(
            "versions_behind",
            &quantiles_json(after.histogram("pls_staleness_versions_behind").unwrap_or(&empty)),
        )
        .build();

    let results = Object::new()
        .f64("elapsed_s", elapsed.as_secs_f64())
        .u64("lookups", lookups)
        .u64("failures", failures)
        .u64("target_misses", tally.target_misses.get())
        .u64("updates", updates)
        .u64("deletes", deletes)
        .u64("mutation_failures", tally.mutation_failures.get())
        .f64("throughput_rps", throughput)
        .field("latency_us", &quantiles_json(&latency))
        .field("mutation_latency_us", &quantiles_json(&tally.mutation_latency_us.snapshot()))
        .field(
            "probe_latency_us",
            &quantiles_json(
                client_metrics.histogram("pls_client_probe_latency_us").unwrap_or(&empty),
            ),
        )
        .field(
            "probe_service_us",
            &quantiles_json(
                client_metrics.histogram("pls_client_probe_service_us").unwrap_or(&empty),
            ),
        )
        .field(
            "probe_net_us",
            &quantiles_json(client_metrics.histogram("pls_client_probe_net_us").unwrap_or(&empty)),
        )
        .field("probes", &probes)
        .field("robustness", &robustness)
        .field("runtime", &runtime_json(&before, &after, lookups))
        .field("staleness", &staleness)
        .build();

    let report = BenchReport::new(opts.name.clone(), config, results);
    let path = report.write(&opts.out).map_err(|e| format!("writing artifact: {e}"))?;
    println!(
        "{lookups} lookups in {:.2}s ({throughput:.0}/s), {failures} failed; \
         latency p50 {:.0}us p99 {:.0}us; {:.2} probes/lookup (servers saw {:.2})",
        elapsed.as_secs_f64(),
        latency.quantile(0.50),
        latency.quantile(0.99),
        probes_hist.mean(),
        server_probe_delta as f64 / lookups as f64,
    );
    if updates + deletes > 0 {
        println!(
            "{updates} updates, {deletes} deletes ({} failed); \
             staleness probe rounds seen: {}",
            tally.mutation_failures.get(),
            after.counter_sum("pls_staleness_rounds_total"),
        );
    }
    println!("-> {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    trace::init(Some(pls_telemetry::Level::Warn));
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let runtime = match tokio::runtime::Builder::new_multi_thread().enable_all().build() {
        Ok(rt) => rt,
        Err(err) => {
            eprintln!("runtime start failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    match runtime.block_on(run(opts)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
