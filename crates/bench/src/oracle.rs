//! Lookup-cost oracle: cross-checks runtime-measured probe counts
//! against the analytic §4.2 model.
//!
//! The same check runs in three places — the live-cluster integration
//! tests, the simulator ([`pls_sim::telemetry`]), and here as a reusable
//! harness for the experiment drivers: measure a probes-per-lookup
//! histogram, then compare its mean against
//! [`pls_metrics::lookup_cost::analytic`] where a closed form exists.

use pls_core::{Cluster, StrategySpec};
use pls_sim::telemetry::measure_lookup_cost;
use pls_telemetry::HistogramSnapshot;

/// Outcome of one lookup-cost cross-check.
#[derive(Debug, Clone)]
pub struct CostCheck {
    /// The placement strategy checked.
    pub spec: StrategySpec,
    /// Entries placed (`h`).
    pub h: usize,
    /// Servers (`n`).
    pub n: usize,
    /// Lookup target (`t`).
    pub t: usize,
    /// The measured probes-per-lookup histogram.
    pub measured: HistogramSnapshot,
    /// The closed-form expected cost, where one exists.
    pub analytic: Option<f64>,
}

impl CostCheck {
    /// Mean measured probes per lookup.
    pub fn measured_mean(&self) -> f64 {
        self.measured.mean()
    }

    /// `|measured − analytic| / analytic`; `None` without a closed form.
    pub fn relative_error(&self) -> Option<f64> {
        let analytic = self.analytic?;
        Some((self.measured_mean() - analytic).abs() / analytic)
    }

    /// Whether the measurement agrees with the model within `tolerance`
    /// (relative). Vacuously true when no closed form exists.
    pub fn holds_within(&self, tolerance: f64) -> bool {
        self.relative_error().is_none_or(|err| err <= tolerance)
    }
}

/// Builds a fresh `n`-server cluster under `spec`, places entries
/// `0..h`, measures the probes-per-lookup histogram over `lookups`
/// lookups of size `t`, and pairs it with the analytic expectation.
///
/// # Panics
///
/// Panics on an invalid spec for `n` servers, `lookups == 0`, or a
/// failing lookup (the cost model assumes operational servers).
pub fn verify_lookup_cost(
    spec: StrategySpec,
    n: usize,
    h: usize,
    t: usize,
    seed: u64,
    lookups: usize,
) -> CostCheck {
    let mut cluster: Cluster<u64> = Cluster::new(n, spec, seed).expect("valid spec");
    cluster.place((0..h as u64).collect()).expect("place succeeds");
    let measured = measure_lookup_cost(&mut cluster, t, lookups);
    let analytic = pls_metrics::lookup_cost::analytic(spec, h, n, t);
    CostCheck { spec, h, n, t, measured, analytic }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_strategies_agree_exactly() {
        for (spec, t) in [
            (StrategySpec::full_replication(), 35),
            (StrategySpec::fixed(40), 35),
            (StrategySpec::round_robin(2), 25),
            (StrategySpec::round_robin(2), 40),
        ] {
            let check = verify_lookup_cost(spec, 10, 100, t, 7, 100);
            assert!(check.analytic.is_some(), "{spec}: expected a closed form");
            assert!(
                check.holds_within(1e-9),
                "{spec} t={t}: measured {} vs analytic {:?}",
                check.measured_mean(),
                check.analytic
            );
        }
    }

    #[test]
    fn random_server_has_no_closed_form_but_plausible_cost() {
        let check = verify_lookup_cost(StrategySpec::random_server(20), 10, 100, 35, 8, 200);
        assert!(check.analytic.is_none());
        assert!(check.holds_within(0.0), "vacuously true without a closed form");
        // Merging ~20-entry answers to reach 35 distinct takes at least
        // 2 and at most all 10 servers.
        let mean = check.measured_mean();
        assert!(mean >= 2.0 && mean <= 10.0, "cost {mean}");
    }

    #[test]
    fn fixed_beyond_x_is_undefined() {
        let check = verify_lookup_cost(StrategySpec::fixed(20), 10, 100, 25, 9, 50);
        assert!(check.analytic.is_none(), "t > x has no defined cost");
    }
}
