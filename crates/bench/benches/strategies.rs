//! Micro-benchmarks of the strategy protocols themselves: placement,
//! update, and lookup throughput per strategy, at the paper's running
//! system shape (h = 100 entries on n = 10 servers, 200-entry budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pls_core::{Cluster, StrategySpec};
use std::hint::black_box;

fn specs() -> Vec<StrategySpec> {
    vec![
        StrategySpec::full_replication(),
        StrategySpec::fixed(20),
        StrategySpec::random_server(20),
        StrategySpec::round_robin(2),
        StrategySpec::hash(2),
    ]
}

fn bench_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("place_100_entries");
    for spec in specs() {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &spec| {
            b.iter(|| {
                let mut cluster = Cluster::new(10, spec, 1).expect("valid spec");
                cluster.place(black_box((0..100u64).collect())).expect("place");
                black_box(cluster.placement().storage_used())
            })
        });
    }
    group.finish();
}

fn bench_update_churn(c: &mut Criterion) {
    // One add + one delete against a steady-state placement; mirrors the
    // §6 update workload's inner loop.
    let mut group = c.benchmark_group("add_delete_pair");
    for spec in specs() {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &spec| {
            let mut cluster = Cluster::new(10, spec, 2).expect("valid spec");
            cluster.place((0..100u64).collect()).expect("place");
            let mut next = 100u64;
            let mut victim = 0u64;
            b.iter(|| {
                cluster.add(black_box(next)).expect("add");
                cluster.delete(black_box(&victim)).expect("delete");
                next += 1;
                victim += 1;
            })
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    // partial_lookup(35): multi-server merging for the partial
    // strategies, single probe for full replication.
    let mut group = c.benchmark_group("partial_lookup_t35");
    for spec in specs() {
        if matches!(spec, StrategySpec::Fixed { x } if x < 35) {
            continue; // undefined for t > x
        }
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &spec| {
            let mut cluster = Cluster::new(10, spec, 3).expect("valid spec");
            cluster.place((0..100u64).collect()).expect("place");
            b.iter(|| black_box(cluster.partial_lookup(black_box(35)).expect("lookup")))
        });
    }
    group.finish();
}

fn bench_lookup_small_t(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_lookup_t5");
    for spec in specs() {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &spec| {
            let mut cluster = Cluster::new(10, spec, 4).expect("valid spec");
            cluster.place((0..100u64).collect()).expect("place");
            b.iter(|| black_box(cluster.partial_lookup(black_box(5)).expect("lookup")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_place, bench_update_churn, bench_lookup, bench_lookup_small_t);
criterion_main!(benches);
