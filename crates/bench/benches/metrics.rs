//! Micro-benchmarks of the evaluation metrics: the greedy
//! fault-tolerance adversary (Appendix A) and the Monte-Carlo unfairness
//! estimator dominate experiment runtime, so their costs matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pls_core::{Cluster, StrategySpec};
use pls_metrics::{fault_tolerance, lookup_cost, unfairness};
use std::hint::black_box;

fn placed(spec: StrategySpec, seed: u64) -> Cluster<u64> {
    let mut cluster = Cluster::new(10, spec, seed).expect("valid spec");
    cluster.place((0..100u64).collect()).expect("place");
    cluster
}

fn bench_greedy_tolerance(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_fault_tolerance");
    for (name, spec) in [
        ("random_server", StrategySpec::random_server(20)),
        ("hash", StrategySpec::hash(2)),
        ("round_robin", StrategySpec::round_robin(2)),
    ] {
        let placement = placed(spec, 7).placement();
        group.bench_with_input(BenchmarkId::from_parameter(name), &placement, |b, p| {
            b.iter(|| black_box(fault_tolerance::greedy_tolerance(black_box(p), 30)))
        });
    }
    group.finish();
}

fn bench_unfairness_estimation(c: &mut Criterion) {
    let universe: Vec<u64> = (0..100).collect();
    let mut group = c.benchmark_group("unfairness_1000_lookups");
    group.sample_size(10);
    for (name, spec) in
        [("random_server", StrategySpec::random_server(20)), ("hash", StrategySpec::hash(2))]
    {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut cluster = placed(spec, 8);
            b.iter(|| black_box(unfairness::measure_instance(&mut cluster, &universe, 35, 1000)))
        });
    }
    group.finish();
}

fn bench_lookup_cost_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_cost_1000_lookups");
    group.sample_size(10);
    for (name, spec) in [
        ("round_robin", StrategySpec::round_robin(2)),
        ("random_server", StrategySpec::random_server(20)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut cluster = placed(spec, 9);
            b.iter(|| black_box(lookup_cost::measure(&mut cluster, 35, 1000)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_tolerance,
    bench_unfairness_estimation,
    bench_lookup_cost_measurement
);
criterion_main!(benches);
