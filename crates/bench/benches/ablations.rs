//! Criterion benches of the internal building blocks whose costs decide
//! whether paper-scale Monte-Carlo runs are feasible: the local entry
//! store's O(1) sampling (vs a naive scan), the hash-family evaluation,
//! and the simulated network's broadcast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pls_core::{HashFamily, IndexedSet};
use pls_net::{DetRng, Endpoint, MsgClass, ServerId, SimNet};
use std::hint::black_box;

fn bench_indexed_set_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("entry_store_sample_t20");
    for size in [100usize, 1000, 10_000] {
        let set: IndexedSet<u64> = (0..size as u64).collect();
        let entries: Vec<u64> = (0..size as u64).collect();

        group.bench_with_input(BenchmarkId::new("indexed_set", size), &set, |b, set| {
            let mut rng = DetRng::seed_from(1);
            b.iter(|| black_box(set.sample(20, &mut rng)))
        });

        // Naive alternative: clone + shuffle + truncate.
        group.bench_with_input(BenchmarkId::new("naive_shuffle", size), &entries, |b, entries| {
            let mut rng = DetRng::seed_from(1);
            b.iter(|| {
                let mut copy = entries.clone();
                rng.shuffle(&mut copy);
                copy.truncate(20);
                black_box(copy)
            })
        });
    }
    group.finish();
}

fn bench_indexed_set_churn(c: &mut Criterion) {
    c.bench_function("entry_store_insert_remove", |b| {
        let mut set: IndexedSet<u64> = (0..1000u64).collect();
        let mut next = 1000u64;
        let mut victim = 0u64;
        b.iter(|| {
            set.insert(black_box(next));
            set.remove(black_box(&victim));
            next += 1;
            victim += 1;
        })
    });
}

fn bench_hash_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_family_assign");
    for y in [1usize, 2, 4, 8] {
        let family = HashFamily::new(y, 10, 42);
        group.bench_with_input(BenchmarkId::from_parameter(y), &family, |b, f| {
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                black_box(f.assign(&v))
            })
        });
    }
    group.finish();
}

fn bench_simnet_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_broadcast_and_drain");
    for n in [10usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut net: SimNet<u64> = SimNet::new(n);
            b.iter(|| {
                net.broadcast(Endpoint::client(0), black_box(7), MsgClass::Update).unwrap();
                let mut sink = 0u64;
                net.deliver_all(|_, env| sink += env.msg);
                black_box(sink)
            })
        });
    }
    group.finish();
}

fn bench_simnet_p2p(c: &mut Criterion) {
    c.bench_function("simnet_p2p_send_pop", |b| {
        let mut net: SimNet<u64> = SimNet::new(10);
        b.iter(|| {
            net.send(Endpoint::client(0), ServerId::new(3), black_box(1), MsgClass::Update)
                .unwrap();
            black_box(net.pop_next())
        })
    });
}

criterion_group!(
    benches,
    bench_indexed_set_sampling,
    bench_indexed_set_churn,
    bench_hash_family,
    bench_simnet_broadcast,
    bench_simnet_p2p
);
criterion_main!(benches);
