//! Allocation-budget regression gate: pins the end-to-end heap
//! allocations per partial lookup, strategy by strategy.
//!
//! The test binary installs the counting global allocator (exactly as
//! `pls-server` does), spins up an in-process 3-server cluster per
//! strategy, and measures a [`pls_telemetry::alloc::phase`] around a
//! fixed batch of lookups. Because client and servers share this
//! process, the measured figure is the *whole* per-lookup allocation
//! story — request encode/decode on both sides, engine reads, response
//! assembly — which is what a regression would inflate no matter where
//! it hides.
//!
//! The ceilings are deliberately generous (several times the expected
//! figure) so scheduler noise and allocator-internal variation never
//! flake the gate; a real regression — an accidental per-probe clone
//! of the entry set, a buffer that stopped being reused — multiplies
//! the count and trips it. CI runs this test in release mode too, so
//! the budget holds for the binaries that get deployed, not just the
//! debug profile.

use std::net::SocketAddr;

use pls_cluster::{Client, ClientConfig, Server, ServerConfig};
use pls_core::StrategySpec;
use tokio::task::JoinHandle;

/// Arm the counting allocator for this test binary, exactly like the
/// `pls-server` binary does, so `alloc::phase` sees real readings.
#[global_allocator]
static ALLOC: pls_telemetry::CountingAlloc = pls_telemetry::CountingAlloc;

const KEYS: usize = 16;
const ENTRIES_PER_KEY: usize = 8;
const WARMUP_LOOKUPS: usize = 50;
const MEASURED_LOOKUPS: usize = 200;
const T: usize = 3;

async fn spawn_cluster(
    n: usize,
    spec: StrategySpec,
    seed: u64,
) -> (Vec<SocketAddr>, Vec<JoinHandle<()>>) {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.expect("bind");
        addrs.push(listener.local_addr().expect("local addr"));
        listeners.push(listener);
    }
    let mut handles = Vec::with_capacity(n);
    for (i, listener) in listeners.into_iter().enumerate() {
        let cfg = ServerConfig::new(i, addrs.clone(), spec, seed);
        let (server, _) = Server::with_listener(cfg, listener).expect("server");
        handles.push(tokio::spawn(server.run()));
    }
    (addrs, handles)
}

/// Measures allocations per lookup for one strategy on a fresh
/// cluster and returns the figure.
async fn allocs_per_lookup(spec: StrategySpec, seed: u64) -> f64 {
    let (addrs, handles) = spawn_cluster(3, spec, seed).await;
    let mut client = Client::connect(ClientConfig::new(addrs, spec, seed + 100));
    for i in 0..KEYS {
        let entries: Vec<Vec<u8>> =
            (0..ENTRIES_PER_KEY).map(|j| format!("entry-{i:03}-{j:03}").into_bytes()).collect();
        client.place(format!("key-{i:03}").as_bytes(), entries).await.expect("place");
    }
    // Warmup: connection setup, first-touch buffers, engine warm paths
    // — none of that belongs to the steady-state per-lookup budget.
    for i in 0..WARMUP_LOOKUPS {
        client.partial_lookup(format!("key-{:03}", i % KEYS).as_bytes(), T).await.expect("warmup");
    }
    let phase = pls_telemetry::alloc::phase();
    for i in 0..MEASURED_LOOKUPS {
        client.partial_lookup(format!("key-{:03}", i % KEYS).as_bytes(), T).await.expect("lookup");
    }
    let delta = phase.delta();
    for handle in &handles {
        handle.abort();
    }
    delta.allocs as f64 / MEASURED_LOOKUPS as f64
}

/// One sequential test (not one per strategy): phases measure global
/// allocator counters, so concurrently running tests would bleed into
/// each other's readings.
#[tokio::test]
async fn allocations_per_lookup_stay_under_budget() {
    // Ceilings are per-strategy because probe fan-out differs: full
    // replication answers from one probe, the targeted and sampled
    // strategies may touch several servers per lookup. Tightened after
    // the sharded-core refactor: the lookup read path allocates the
    // same as before (routing is a hash over an existing digest, and
    // the per-shard maps replace — not add to — the global ones), so
    // the ceilings sit at roughly 2x the measured steady-state figure
    // instead of the original launch-margin 3-4x.
    let budgets: [(&str, StrategySpec, f64); 5] = [
        ("full", StrategySpec::full_replication(), 1_200.0),
        ("fixed:4", StrategySpec::fixed(4), 1_200.0),
        ("random:4", StrategySpec::random_server(4), 1_800.0),
        ("round:2", StrategySpec::round_robin(2), 1_800.0),
        ("hash:2", StrategySpec::hash(2), 1_800.0),
    ];
    for (i, (label, spec, ceiling)) in budgets.into_iter().enumerate() {
        let measured = allocs_per_lookup(spec, 1000 + i as u64 * 7).await;
        println!("allocs/lookup {label:<9} measured {measured:>8.1}  ceiling {ceiling:>7.0}");
        assert!(
            measured > 0.0,
            "{label}: counting allocator reported zero allocations — is it installed?"
        );
        assert!(
            measured <= ceiling,
            "{label}: {measured:.1} allocations per lookup exceeds the pinned \
             budget of {ceiling:.0} — a per-lookup allocation regression"
        );
    }
}
