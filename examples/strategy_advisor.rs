//! The paper's Table 2 and rules of thumb, as an interactive-style
//! advisor: describe your workload, get a concrete strategy with its
//! parameter.
//!
//! ```sh
//! cargo run --example strategy_advisor
//! ```

use partial_lookup::core::advisor::{recommend, star_table, Dimension, Requirements};

fn main() {
    // Print Table 2 (the qualitative summary).
    println!("Table 2 — strategy suitability (more stars = better):\n");
    print!("{:<16}", "strategy");
    for dim in Dimension::ALL {
        print!(" | {dim}");
    }
    println!();
    for (kind, cells) in star_table() {
        print!("{:<16}", kind.to_string());
        for (dim, stars) in cells {
            let width = dim.to_string().len();
            print!(" | {:<width$}", stars.to_string());
        }
        println!();
    }

    // Now run some workloads through the advisor.
    println!("\nAdvisor scenarios:\n");
    let scenarios: Vec<(&str, Requirements)> = vec![
        (
            "music sharing: popular song, fairness matters, mostly static",
            Requirements::new(10, 200, 3).fairness_required(true),
        ),
        (
            "yellow pages: heavy churn, users want a page of 15 listings",
            Requirements::new(10, 400, 15).update_heavy(true),
        ),
        (
            "feed mirror: heavy churn, users want most of the entries",
            Requirements::new(10, 100, 40).update_heavy(true),
        ),
        (
            "embedded directory: per-server RAM capped at 64 records",
            Requirements::new(10, 5000, 10).fixed_server_capacity(64),
        ),
        (
            "archival index: storage is cheap, answers must be unbiased",
            Requirements::new(10, 100, 20).fairness_required(true).storage_unconstrained(true),
        ),
    ];
    for (description, req) in scenarios {
        let spec = recommend(&req);
        println!("  {description}\n    -> {spec}\n");
    }
}
