//! Quickstart: place entries under each strategy and watch how partial
//! lookups behave.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use partial_lookup::{Cluster, StrategySpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10; // servers
    let h = 100; // entries for our key
    let t = 30; // how many entries a client wants per lookup

    println!("partial lookup quickstart: {h} entries on {n} servers, clients want t={t}\n");
    println!("{:<18} {:>12} {:>10} {:>16}", "strategy", "storage", "coverage", "servers/lookup");

    for spec in [
        StrategySpec::full_replication(),
        StrategySpec::fixed(40), // t plus a cushion
        StrategySpec::random_server(20),
        StrategySpec::round_robin(2),
        StrategySpec::hash(2),
    ] {
        let mut cluster = Cluster::new(n, spec, 42)?;
        cluster.place((0..h as u64).collect())?;

        let placement = cluster.placement();
        let storage = placement.storage_used();
        let coverage = placement.coverage();

        // Average lookup cost over a few hundred lookups.
        let lookups = 500;
        let mut contacted = 0usize;
        for _ in 0..lookups {
            let result = cluster.partial_lookup(t)?;
            assert!(result.is_satisfied(t), "{spec} failed a lookup");
            contacted += result.servers_contacted();
        }
        println!(
            "{:<18} {:>12} {:>10} {:>16.2}",
            spec.to_string(),
            storage,
            coverage,
            contacted as f64 / lookups as f64
        );
    }

    println!(
        "\nFull replication stores {}x more than Round-2 for the same lookups;",
        (h * n) / (h * 2)
    );
    println!("partial lookup strategies trade a little lookup cost for that storage.");
    Ok(())
}
