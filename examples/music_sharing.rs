//! The paper's motivating scenario: a Napster-style music directory.
//!
//! A popular song has hundreds of peers serving it, but a downloader
//! needs only a couple of them. The directory tier manages the
//! song → peer-list mapping with a partial lookup strategy, and this
//! example shows the two wins the paper leads with: **load spreading
//! across peers** (fairness) and **surviving directory-server failures**.
//!
//! ```sh
//! cargo run --example music_sharing
//! ```

use std::collections::HashMap;

use partial_lookup::{Cluster, ServerId, StrategySpec};

/// A peer serving the song.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Peer {
    host: String,
}

fn peers(count: usize) -> Vec<Peer> {
    (0..count).map(|i| Peer { host: format!("peer{i}.p2p.example:6699") }).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10; // directory servers
    let swarm = peers(200); // peers with a copy of the song
    let t = 3; // a downloader wants 3 candidate peers

    println!("music directory: 1 hot song, {} serving peers, {n} directory servers\n", swarm.len());

    // Round-robin placement: every peer is registered on exactly 2
    // directory servers, and lookups rotate evenly over peers.
    let mut directory = Cluster::new(n, StrategySpec::round_robin(2), 7)?;
    directory.place(swarm.clone())?;
    println!(
        "directory stores {} peer records total ({} per server) instead of {} under full replication",
        directory.placement().storage_used(),
        directory.placement().storage_used() / n,
        swarm.len() * n,
    );

    // 10_000 downloads: how evenly is the swarm used?
    let downloads = 10_000;
    let mut load: HashMap<Peer, usize> = HashMap::new();
    for _ in 0..downloads {
        let result = directory.partial_lookup(t)?;
        // The downloader contacts the first returned peer.
        let chosen = result.entries()[0].clone();
        *load.entry(chosen).or_insert(0) += 1;
    }
    let max = load.values().copied().max().unwrap_or(0);
    let min = swarm.iter().map(|p| load.get(p).copied().unwrap_or(0)).min().unwrap_or(0);
    let mean = downloads as f64 / swarm.len() as f64;
    println!(
        "\nafter {downloads} downloads: per-peer load mean {mean:.0}, min {min}, max {max} \
         (a hot-spot-free swarm)"
    );

    // Now a directory outage: 4 of 10 servers crash.
    for i in 0..4 {
        directory.fail_server(ServerId::new(i));
    }
    let mut satisfied = 0;
    for _ in 0..1000 {
        let result = directory.partial_lookup(t)?;
        if result.is_satisfied(t) {
            satisfied += 1;
        }
    }
    println!(
        "\nwith 4/10 directory servers down, {satisfied}/1000 lookups still returned {t} peers"
    );
    assert_eq!(satisfied, 1000, "the placement should ride out this outage");

    // Coverage under the same outage: Round-2 only loses a peer record
    // when *both* of its directory copies are down, while a single-copy
    // Hash-1 directory loses every record on a failed server.
    let survivors_rr = directory.placement().coverage_surviving(directory.failures());
    let mut single_copy = Cluster::new(n, StrategySpec::hash(1), 8)?;
    single_copy.place(swarm.clone())?;
    for i in 0..4 {
        single_copy.fail_server(ServerId::new(i));
    }
    let survivors_single = single_copy.placement().coverage_surviving(single_copy.failures());
    println!(
        "peer records still reachable: Round-2 {survivors_rr}/{}, single-copy Hash-1 {survivors_single}/{}",
        swarm.len(),
        swarm.len()
    );
    assert!(survivors_rr > survivors_single);

    // And the traditional key-partitioned directory the paper criticizes
    // (Chord/CAN-style: the *whole key* hashed to one server) fails
    // outright whenever that one server is in the outage — which is why
    // the paper partitions a key's entries instead of the key space.
    println!(
        "a key-partitioned directory would lose the song entirely with probability 4/10 \
         under this outage; partial lookup placements degrade gracefully instead"
    );
    Ok(())
}
