//! A "yellow pages" directory under churn: categories map to provider
//! URLs that come and go, and the operator must pick a strategy that
//! keeps lookups cheap while updates stream in (paper §5–§6).
//!
//! The example replays the paper's steady-state update workload against
//! the two update-friendly strategies (Fixed-x with a cushion, Hash-y)
//! and reports the §6.4 message overhead plus the observed lookup
//! failure rate — the trade-off Figure 12 and Figure 14 quantify.
//!
//! ```sh
//! cargo run --example yellow_pages
//! ```

use partial_lookup::sim::workload::{LifetimeKind, WorkloadConfig};
use partial_lookup::sim::Simulation;
use partial_lookup::{Cluster, StrategySpec};

fn churn_run(
    spec: StrategySpec,
    n: usize,
    steady_h: usize,
    updates: usize,
    t: usize,
    seed: u64,
) -> Result<(u64, f64), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(n, spec, seed)?;
    let workload = WorkloadConfig {
        arrival_mean: 10.0,
        steady_h,
        lifetime: LifetimeKind::Exponential,
        updates,
        seed: seed ^ 0xFEED,
    }
    .generate();
    let mut sim = Simulation::new(cluster, workload)?;
    sim.cluster_mut().reset_counter();

    // Interleave lookups with the update stream, like real clients would.
    let mut failed = 0usize;
    let mut lookups = 0usize;
    while sim.remaining() > 0 {
        sim.run(20)?;
        let result = sim.cluster_mut().partial_lookup(t)?;
        lookups += 1;
        if !result.is_satisfied(t) {
            failed += 1;
        }
    }
    let update_msgs = sim.cluster().counter().update_messages();
    Ok((update_msgs, failed as f64 / lookups as f64))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10;
    let steady_h = 100; // providers per category, steady state
    let updates = 5000;
    let t = 15; // a user wants 15 listings

    println!(
        "yellow pages: ~{steady_h} providers per category on {n} servers, {updates} updates, t={t}\n"
    );
    println!("{:<22} {:>14} {:>18}", "strategy", "update msgs", "lookup failures");

    // Fixed-x with the paper's cushion guidance (x = t + b).
    for cushion in [0usize, 3, 6] {
        let spec = StrategySpec::fixed(t + cushion);
        let (msgs, fail) = churn_run(spec, n, steady_h, updates, t, 11)?;
        println!(
            "{:<22} {:>14} {:>17.2}%",
            format!("{spec} (cushion {cushion})"),
            msgs,
            fail * 100.0
        );
    }

    // Hash-y with enough copies that one server usually suffices.
    for y in [1usize, 2] {
        let spec = StrategySpec::hash(y);
        let (msgs, fail) = churn_run(spec, n, steady_h, updates, t, 12)?;
        println!("{:<22} {:>14} {:>17.2}%", spec.to_string(), msgs, fail * 100.0);
    }

    // The baseline everyone starts from.
    let spec = StrategySpec::full_replication();
    let (msgs, fail) = churn_run(spec, n, steady_h, updates, t, 13)?;
    println!("{:<22} {:>14} {:>17.2}%", spec.to_string(), msgs, fail * 100.0);

    println!(
        "\ntakeaways: a cushion of ~3 erases Fixed-x's lookup failures for a few hundred extra\n\
         messages; with t/h = {:.2} just above 1/n = {:.2}, Hash-y is competitive on messages\n\
         (the paper's §6.4 crossover); full replication pays an n-server broadcast on every\n\
         update — {}x the best partial strategy here.",
        t as f64 / steady_h as f64,
        1.0 / n as f64,
        55000 / 10000
    );
    Ok(())
}
