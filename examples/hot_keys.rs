//! Hot keys: a multi-key directory under Zipf popularity, partial lookup
//! vs the Chord-style key-partitioned baseline.
//!
//! Demonstrates the paper's headline claims (§1, §9) with the
//! [`Directory`] / [`KeyPartitioned`] pair: per-server load spreading and
//! availability under failures, plus per-key strategy assignment driven
//! by the advisor.
//!
//! ```sh
//! cargo run --example hot_keys
//! ```
//!
//! [`Directory`]: partial_lookup::core::directory::Directory
//! [`KeyPartitioned`]: partial_lookup::core::baseline::KeyPartitioned

use partial_lookup::core::baseline::KeyPartitioned;
use partial_lookup::core::directory::{Directory, StrategyAssignment};
use partial_lookup::metrics::LoadBalance;
use partial_lookup::sim::DiscreteZipf;
use partial_lookup::{DetRng, ServerId, StrategySpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10;
    let keys = 200usize;
    let entries_per_key = 25;
    let lookups = 30_000;
    let t = 3;

    println!("{keys} keys on {n} servers, Zipf(1.0) popularity, {lookups} lookups of t={t}\n");

    // Partial-lookup directory: hot keys (low ranks) get Round-Robin for
    // perfect spreading; the long tail gets cheap Hash-2.
    let assignment: StrategyAssignment<usize> = StrategyAssignment::PerKey(Box::new(|key| {
        if *key < 20 {
            StrategySpec::round_robin(2)
        } else {
            StrategySpec::hash(2)
        }
    }));
    let mut directory: Directory<usize, u64> = Directory::new(n, assignment, 1)?;
    let mut baseline: KeyPartitioned<usize, u64> = KeyPartitioned::new(n, 1, 1)?;

    for key in 0..keys {
        let entries: Vec<u64> =
            ((key * entries_per_key) as u64..((key + 1) * entries_per_key) as u64).collect();
        directory.place(key, entries.clone())?;
        baseline.place(key, entries)?;
    }
    directory.reset_load();
    baseline.reset_load();

    // The same popularity-weighted lookup stream against both systems.
    let zipf = DiscreteZipf::new(keys, 1.0);
    let mut rng = DetRng::seed_from(7);
    let stream: Vec<usize> = (0..lookups).map(|_| zipf.sample(&mut rng)).collect();
    for &key in &stream {
        directory.partial_lookup(&key, t)?;
        baseline.partial_lookup(&key, t)?;
    }

    let dir_load = LoadBalance::of(directory.lookup_load());
    let base_load = LoadBalance::of(baseline.lookup_load());
    println!("per-server lookup load (hot-spot metric):");
    println!(
        "  partial directory:   max/mean {:.2}, CV {:.3}",
        dir_load.max_over_mean(),
        dir_load.cv()
    );
    println!(
        "  key-partitioned DHT: max/mean {:.2}, CV {:.3}   <- the hot keys' home servers",
        base_load.max_over_mean(),
        base_load.cv()
    );

    // Fail two servers; replay the stream.
    for s in [2u32, 7] {
        directory.fail_server(ServerId::new(s));
        baseline.fail_server(ServerId::new(s));
    }
    let mut dir_failed = 0usize;
    let mut base_failed = 0usize;
    for &key in &stream {
        match directory.partial_lookup(&key, t) {
            Ok(r) if r.is_satisfied(t) => {}
            _ => dir_failed += 1,
        }
        match baseline.partial_lookup(&key, t) {
            Ok(r) if r.is_satisfied(t) => {}
            _ => base_failed += 1,
        }
    }
    println!("\nwith servers 2 and 7 down:");
    println!(
        "  partial directory:   {:.2}% of lookups failed",
        dir_failed as f64 * 100.0 / stream.len() as f64
    );
    println!(
        "  key-partitioned DHT: {:.2}% of lookups failed (keys homed on dead servers)",
        base_failed as f64 * 100.0 / stream.len() as f64
    );
    Ok(())
}
