//! Observability demo: a real 4-server TCP cluster under mixed traffic
//! — including a Zipf-skewed hot-key phase — then the aggregated
//! metrics in Prometheus text format and a live-quality readout (the
//! online §4.5 unfairness and §4.3 coverage gauges plus the hottest
//! keys from the servers' Space-Saving sketches).
//!
//! ```sh
//! cargo run --example live_metrics            # warnings only
//! cargo run --example live_metrics -- debug   # structured event log too
//! ```
//!
//! The same exposition is available from a deployed cluster with
//! `pls-client --servers ... --strategy ... stats` (or over HTTP from
//! `pls-server --metrics-addr`).

use partial_lookup::cluster::{Client, ClientConfig, Server, ServerConfig};
use partial_lookup::sim::DiscreteZipf;
use partial_lookup::telemetry::snapshot::parse_labels;
use partial_lookup::{DetRng, StrategySpec};

#[tokio::main(flavor = "multi_thread")]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Structured tracing to stderr; the metrics below work even at `off`.
    let level = std::env::args().nth(1).unwrap_or_else(|| "warn".to_string());
    partial_lookup::telemetry::trace::init_from_str(&level).map_err(std::io::Error::other)?;

    let n = 4;
    let spec = StrategySpec::random_server(6);

    // Bind all listeners first so every server knows its peers.
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }
    let mut handles = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let cfg = ServerConfig::new(i, addrs.clone(), spec, 2003);
        let (server, _) = Server::with_listener(cfg, listener)?;
        handles.push(tokio::spawn(server.run()));
    }

    let mut client = Client::connect(ClientConfig::new(addrs, spec, 7));

    // Mixed traffic: two keys (one under a per-key strategy), a stream of
    // adds/deletes, and both sequential and parallel lookups.
    let songs: Vec<Vec<u8>> = (0..12).map(|i| format!("peer{i}:6699").into_bytes()).collect();
    client.place(b"song/stairway", songs).await?;
    let urls: Vec<Vec<u8>> = (0..8).map(|i| format!("http://host{i}/").into_bytes()).collect();
    client.place_with_strategy(b"category/guitar", urls, StrategySpec::round_robin(2)).await?;
    for i in 0..6u32 {
        client.add(b"song/stairway", format!("late{i}:6699").into_bytes()).await?;
        if i % 2 == 0 {
            client.delete(b"song/stairway", format!("peer{i}:6699").into_bytes()).await?;
        }
    }
    for t in [3usize, 6, 9] {
        client.partial_lookup(b"song/stairway", t).await?;
        client.partial_lookup(b"category/guitar", t).await?;
    }
    client.partial_lookup_parallel(b"song/stairway", 10, 4).await?;

    // Zipf-skewed phase: 12 more keys whose lookup traffic follows a
    // discrete Zipf law (rank 0 hottest) — the workload the hot-key
    // sketch is built for. The per-entry hit counters behind the live
    // unfairness gauge see the same skew.
    let m = 12usize;
    let zipf = DiscreteZipf::new(m, 1.1);
    let mut rng = DetRng::seed_from(2003);
    for i in 0..m {
        let key = format!("song/top{i}").into_bytes();
        let peers: Vec<Vec<u8>> = (0..8).map(|p| format!("seed{p}:6699").into_bytes()).collect();
        client.place(&key, peers).await?;
    }
    for _ in 0..200 {
        let rank = zipf.sample(&mut rng);
        let key = format!("song/top{rank}").into_bytes();
        client.partial_lookup(&key, 3).await?;
    }

    // Cluster-wide view: each server's Metrics RPC answer, merged by
    // name (counters summed, histograms merged).
    let cluster = client.cluster_metrics(false).await?;
    println!("# ==== cluster-wide ({n} servers, merged) ====");
    print!("{}", cluster.to_prometheus());

    // Client-side view, including the probes-per-lookup histogram: the
    // paper's client lookup cost (§4.2), measured on live traffic.
    println!("# ==== client ====");
    print!("{}", client.metrics_snapshot().to_prometheus());

    let per_lookup = client.metrics().probes_per_lookup.snapshot();
    println!(
        "# mean probes per lookup: {:.2} over {} lookups",
        per_lookup.mean(),
        per_lookup.count
    );

    // Live quality: the gauges are recomputed cluster-wide from the
    // merged per-entry hit counters, and the hot-key ranking sums every
    // server's sketch — under the Zipf workload it should surface the
    // low ranks (song/top0, song/top1, ...) first.
    println!("# ==== live quality ====");
    println!(
        "# unfairness (mean per-key CoV): {:.4}",
        cluster.gauge("pls_live_unfairness").unwrap_or(f64::NAN)
    );
    println!(
        "# coverage (entries retrieved at least once): {:.4}",
        cluster.gauge("pls_live_coverage").unwrap_or(f64::NAN)
    );
    let mut hot: Vec<(String, u64)> = cluster
        .counters
        .iter()
        .filter_map(|(name, value)| {
            let (family, labels) = parse_labels(name)?;
            if family != "pls_hot_key_probes" {
                return None;
            }
            let (_, key) = labels.into_iter().find(|(k, _)| k == "key")?;
            Some((key, *value))
        })
        .collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!("# hottest keys (Space-Saving estimates):");
    for (key, count) in hot.iter().take(5) {
        println!("#   {key:<20} {count}");
    }

    for h in handles {
        h.abort();
    }
    Ok(())
}
