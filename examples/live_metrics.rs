//! Observability demo: a real 4-server TCP cluster under mixed traffic,
//! then the aggregated metrics in Prometheus text format.
//!
//! ```sh
//! cargo run --example live_metrics            # warnings only
//! cargo run --example live_metrics -- debug   # structured event log too
//! ```
//!
//! The same exposition is available from a deployed cluster with
//! `pls-client --servers ... --strategy ... stats`.

use partial_lookup::cluster::{Client, ClientConfig, Server, ServerConfig};
use partial_lookup::StrategySpec;

#[tokio::main(flavor = "multi_thread")]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Structured tracing to stderr; the metrics below work even at `off`.
    let level = std::env::args().nth(1).unwrap_or_else(|| "warn".to_string());
    partial_lookup::telemetry::trace::init_from_str(&level)
        .map_err(std::io::Error::other)?;

    let n = 4;
    let spec = StrategySpec::random_server(6);

    // Bind all listeners first so every server knows its peers.
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }
    let mut handles = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let cfg = ServerConfig::new(i, addrs.clone(), spec, 2003);
        let (server, _) = Server::with_listener(cfg, listener)?;
        handles.push(tokio::spawn(server.run()));
    }

    let mut client = Client::connect(ClientConfig::new(addrs, spec, 7));

    // Mixed traffic: two keys (one under a per-key strategy), a stream of
    // adds/deletes, and both sequential and parallel lookups.
    let songs: Vec<Vec<u8>> = (0..12).map(|i| format!("peer{i}:6699").into_bytes()).collect();
    client.place(b"song/stairway", songs).await?;
    let urls: Vec<Vec<u8>> = (0..8).map(|i| format!("http://host{i}/").into_bytes()).collect();
    client
        .place_with_strategy(b"category/guitar", urls, StrategySpec::round_robin(2))
        .await?;
    for i in 0..6u32 {
        client.add(b"song/stairway", format!("late{i}:6699").into_bytes()).await?;
        if i % 2 == 0 {
            client.delete(b"song/stairway", format!("peer{i}:6699").into_bytes()).await?;
        }
    }
    for t in [3usize, 6, 9] {
        client.partial_lookup(b"song/stairway", t).await?;
        client.partial_lookup(b"category/guitar", t).await?;
    }
    client.partial_lookup_parallel(b"song/stairway", 10, 4).await?;

    // Cluster-wide view: each server's Metrics RPC answer, merged by
    // name (counters summed, histograms merged).
    let cluster = client.cluster_metrics(false).await?;
    println!("# ==== cluster-wide ({n} servers, merged) ====");
    print!("{}", cluster.to_prometheus());

    // Client-side view, including the probes-per-lookup histogram: the
    // paper's client lookup cost (§4.2), measured on live traffic.
    println!("# ==== client ====");
    print!("{}", client.metrics_snapshot().to_prometheus());

    let per_lookup = client.metrics().probes_per_lookup.snapshot();
    println!(
        "# mean probes per lookup: {:.2} over {} lookups",
        per_lookup.mean(),
        per_lookup.count
    );

    for h in handles {
        h.abort();
    }
    Ok(())
}
