//! Spin up a real 4-server TCP cluster in one process, exercise it with
//! the client library, and crash a server mid-flight.
//!
//! ```sh
//! cargo run --example live_cluster
//! ```
//!
//! (The `pls-server` / `pls-client` binaries run the same code as
//! separate processes; see their `--help`.)

use partial_lookup::cluster::{Client, ClientConfig, Server, ServerConfig};
use partial_lookup::StrategySpec;

#[tokio::main(flavor = "multi_thread")]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let spec = StrategySpec::round_robin(2);

    // Bind all listeners first so every server knows its peers.
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }
    let mut handles = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let cfg = ServerConfig::new(i, addrs.clone(), spec, 2003);
        let (server, addr) = Server::with_listener(cfg, listener)?;
        println!("server {i} on {addr}");
        handles.push(tokio::spawn(server.run()));
    }

    let mut client = Client::connect(ClientConfig::new(addrs, spec, 7));

    // A song with eight serving peers, two directory copies each.
    let peers: Vec<Vec<u8>> = (0..8).map(|i| format!("peer{i}:6699").into_bytes()).collect();
    client.place(b"song/stairway", peers).await?;
    println!("\nplaced 8 peers under song/stairway");

    let hits = client.partial_lookup(b"song/stairway", 3).await?;
    println!(
        "lookup t=3 -> {:?}",
        hits.iter().map(|e| String::from_utf8_lossy(e)).collect::<Vec<_>>()
    );

    // Live updates.
    client.add(b"song/stairway", b"peer8:6699".to_vec()).await?;
    client.delete(b"song/stairway", b"peer0:6699".to_vec()).await?;
    println!("added peer8, deleted peer0 (round-robin migration ran over TCP)");

    for i in 0..n {
        let (keys, entries) = client.status_of(i).await?;
        println!("  server {i}: {keys} key(s), {entries} entries");
    }

    // Crash a server; lookups keep working.
    handles[2].abort();
    println!("\ncrashed server 2");
    let hits = client.partial_lookup(b"song/stairway", 3).await?;
    println!(
        "lookup t=3 still answers -> {:?}",
        hits.iter().map(|e| String::from_utf8_lossy(e)).collect::<Vec<_>>()
    );

    for h in handles {
        h.abort();
    }
    Ok(())
}
